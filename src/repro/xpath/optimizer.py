"""Cost-based rewriting of compiled algebra plans over document statistics.

The compiler (:mod:`repro.xpath.compiler`) emits the algebra exactly as the
query is written: axis direction, predicate placement and branch order are
whatever the parser produced.  This pass sits between compilation and
evaluation and uses a :class:`repro.compress.stats.DocumentStats` catalog
to rewrite the tree.  Four rule families (docs/optimizer.md walks worked
before/after plans for each):

* ``fold-empty-set`` — a leaf set the catalog *proves* empty (exact tree
  counts, never the string sketch) becomes :class:`EmptySet`;
* ``propagate-empty`` — emptiness flows upward: the image of the empty set
  is empty under every axis, an intersection with a provably empty
  conjunct is empty, the empty branch of a union disappears;
* ``root-axis-identity`` — axis applications whose source is ``{root}``
  or ``V`` have closed forms (``descendant({root})`` is ``V − {root}``,
  ``parent({root})`` is empty, ``descendant-or-self(V)`` is ``V``, ...):
  the inverted product rebuild the axis would run is replaced by pure
  mask arithmetic, the optimizer's "choose axis direction" lever;
* ``reorder-conjuncts`` / ``push-string-predicate`` — conjunction chains
  re-associate cheapest-and-most-selective-first: leaf sets (including
  string-containment sets, ordered by the selectivity sketch) ahead of
  split-free predicate subtrees ahead of subtrees containing structural
  joins (non-upward axis applications).

**The soundness contract** (property-pinned in
``tests/property/test_optimizer_properties.py``): every rewrite preserves
the *byte-identical* result payload — DAG vertex count, tree-node count
and decoded paths.  Tree counts and paths only need set-semantics
equivalence, but the DAG count also depends on which vertex splits
evaluation performs, so a rewrite may only *eliminate* work that can
never split (:func:`repro.xpath.algebra.is_split_free`): upward-axis
subtrees, leaf sets, and axis applications whose source is already empty
(the engine fast-paths those without touching the structure).  A branch
that may split is kept in the plan even when its result is provably
empty — the evaluator's short-circuit mode applies the same guard at
runtime.

Estimates are in *tree-node* units (what ``result.tree_count()``
reports), computed bottom-up under independence assumptions; see
``DocumentStats`` and docs/optimizer.md for the model and its limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compress.stats import DocumentStats
from repro.model.schema import is_string_set
from repro.xpath.algebra import (
    AlgebraExpr,
    AllNodes,
    AxisApply,
    ContextSet,
    Difference,
    EmptySet,
    Intersect,
    NamedSet,
    RootFilter,
    RootSet,
    Union,
    is_split_free,
)

#: Rule tags attached to plan nodes (the `rules` field of explain output).
RULE_FOLD_EMPTY = "fold-empty-set"
RULE_PROPAGATE_EMPTY = "propagate-empty"
RULE_ROOT_AXIS = "root-axis-identity"
RULE_REORDER = "reorder-conjuncts"
RULE_PUSH_STRING = "push-string-predicate"


@dataclass
class OptimizationResult:
    """One optimized plan: the rewritten tree plus its annotations.

    ``rules`` and ``estimates`` are keyed by ``id()`` of the nodes of
    ``expr`` (expressions are immutable and alive as long as this result
    is); :class:`repro.api.plan.Plan` turns them into per-node
    ``est_cardinality`` / ``rules`` fields.
    """

    expr: AlgebraExpr
    original: AlgebraExpr
    #: True when at least one rewrite rule fired (``expr`` differs).
    optimized: bool = False
    #: Distinct rule tags fired, in first-fired order.
    rules_applied: tuple[str, ...] = ()
    #: id(node) -> rule tags that produced that node.
    rules: dict[int, tuple[str, ...]] = field(default_factory=dict)
    #: id(node) -> estimated result cardinality in tree nodes.
    estimates: dict[int, float] = field(default_factory=dict)
    #: True when a statistics catalog was available at all.
    stats_available: bool = False


def optimize(expr: AlgebraExpr, stats: DocumentStats | None) -> OptimizationResult:
    """Rewrite ``expr`` using ``stats``; without statistics, a no-op result.

    The no-statistics path is the version-stamp fallback: a document
    published before the stats catalog existed (or whose stats file is
    unreadable) evaluates its unoptimized plan — never an error.
    """
    if stats is None:
        return OptimizationResult(expr=expr, original=expr)
    optimizer = _Optimizer(stats)
    rewritten = optimizer.rewrite(expr)
    # Keep only tags on nodes that survived into the final tree: those are
    # alive as long as the result is, so their ids cannot be reused.
    live: set[int] = set()
    stack = [rewritten]
    while stack:
        node = stack.pop()
        if id(node) not in live:
            live.add(id(node))
            stack.extend(node.children())
    result = OptimizationResult(
        expr=rewritten,
        original=expr,
        optimized=rewritten is not expr,
        rules_applied=tuple(optimizer.fired),
        rules={key: tags for key, tags in optimizer.rules.items() if key in live},
        estimates={},
        stats_available=True,
    )
    _estimate(rewritten, stats, result.estimates)
    return result


class _Optimizer:
    """One bottom-up rewrite pass (see the module doc for the rules)."""

    def __init__(self, stats: DocumentStats):
        self.stats = stats
        self.rules: dict[int, tuple[str, ...]] = {}
        self.fired: list[str] = []
        # Tagged nodes are pinned for the lifetime of the pass: ``rules``
        # is keyed by id(), and letting an intermediate node be collected
        # would allow a later allocation to reuse its id and inherit its
        # tags.  ``optimize`` prunes the map to the final tree's nodes.
        self._pinned: list[AlgebraExpr] = []

    def _tag(self, expr: AlgebraExpr, *rule_names: str) -> AlgebraExpr:
        self._pinned.append(expr)
        merged = self.rules.get(id(expr), ()) + rule_names
        self.rules[id(expr)] = tuple(dict.fromkeys(merged))
        for name in rule_names:
            if name not in self.fired:
                self.fired.append(name)
        return expr

    # -- the dispatch ----------------------------------------------------

    def rewrite(self, expr: AlgebraExpr) -> AlgebraExpr:
        if isinstance(expr, NamedSet):
            if self.stats.is_empty(expr.name):
                return self._tag(EmptySet(), RULE_FOLD_EMPTY)
            return expr
        if isinstance(expr, AxisApply):
            return self._rewrite_axis(expr)
        if isinstance(expr, Intersect):
            return self._rewrite_conjunction(expr)
        if isinstance(expr, Union):
            return self._rewrite_union(expr)
        if isinstance(expr, Difference):
            return self._rewrite_difference(expr)
        if isinstance(expr, RootFilter):
            operand = self.rewrite(expr.operand)
            if isinstance(operand, EmptySet):
                # root ∈ ∅ never holds: V|root(∅) = ∅.
                return self._tag(EmptySet(), RULE_PROPAGATE_EMPTY)
            if operand is expr.operand:
                return expr
            return RootFilter(operand)
        return expr  # leaves: RootSet, AllNodes, ContextSet, EmptySet

    # -- axis applications -----------------------------------------------

    def _rewrite_axis(self, expr: AxisApply) -> AlgebraExpr:
        operand = self.rewrite(expr.operand)
        if isinstance(operand, EmptySet):
            # chi(∅) = ∅ for every axis; the engine would fast-path this
            # without structural change, so folding it away is split-safe.
            return self._tag(EmptySet(), RULE_PROPAGATE_EMPTY)
        identity = self._axis_identity(expr.axis, operand)
        if identity is not None:
            return self._tag(identity, RULE_ROOT_AXIS)
        if operand is expr.operand:
            return expr
        return AxisApply(expr.axis, operand)

    @staticmethod
    def _axis_identity(axis: str, operand: AlgebraExpr) -> AlgebraExpr | None:
        """Closed forms for axis images of ``{root}`` and ``V``.

        Each identity replaces an application the engine would evaluate
        with a structure pass (split-free in these cases — the context is
        uniform, so the product never refines the partition) by plain mask
        arithmetic; results are identical selections.
        """
        if isinstance(operand, RootSet):
            if axis == "self":
                return operand
            if axis == "ancestor-or-self":
                # The root's only ancestor-or-self is the root.
                return operand
            if axis == "descendant":
                # Every non-root node has the root as an ancestor.
                return Difference(AllNodes(), RootSet())
            if axis == "descendant-or-self":
                return AllNodes()
            if axis in (
                "parent",
                "ancestor",
                "following-sibling",
                "preceding-sibling",
                "following",
                "preceding",
            ):
                # The root has no parent, hence none of these relatives.
                return EmptySet()
            if axis == "child":
                return None  # a genuine (cheap, split-free) image
        if isinstance(operand, AllNodes):
            if axis in ("self", "descendant-or-self", "ancestor-or-self"):
                return operand
            if axis in ("child", "descendant"):
                # Every node but the root has a parent (hence an ancestor).
                return Difference(AllNodes(), RootSet())
            if axis in ("parent", "ancestor"):
                # Forward image: nodes with a child (resp. descendant) in V
                # are exactly the non-leaves; no closed form — leave it.
                return None
        return None

    # -- conjunction chains ----------------------------------------------

    def _conjuncts(self, expr: AlgebraExpr) -> list[AlgebraExpr]:
        if isinstance(expr, Intersect):
            return self._conjuncts(expr.left) + self._conjuncts(expr.right)
        return [expr]

    def _rewrite_conjunction(self, expr: Intersect) -> AlgebraExpr:
        conjuncts = [self.rewrite(part) for part in self._conjuncts(expr)]
        empties = [part for part in conjuncts if isinstance(part, EmptySet)]
        rest = [part for part in conjuncts if not isinstance(part, EmptySet)]
        if empties:
            if all(is_split_free(part) for part in rest):
                # The whole conjunction is provably empty, and dropping the
                # other conjuncts eliminates only split-free work.
                return self._tag(EmptySet(), RULE_PROPAGATE_EMPTY)
            # Keep the possibly-splitting conjuncts in the plan (the DAG
            # partition must stay byte-identical) but intersect with the
            # empty set *first*: evaluation becomes trivial mask work and
            # the runtime short-circuit can skip any split-free tail.
            ordered = [empties[0]] + self._ordered(rest)
            return self._tag(_fold_intersect(ordered), RULE_REORDER)
        ordered = self._ordered(conjuncts)
        if ordered == conjuncts:
            # Order unchanged: keep the original node when nothing below
            # changed either, so untouched plans stay identical objects.
            if all(a is b for a, b in zip(conjuncts, self._conjuncts(expr))):
                return expr
            return _fold_intersect(conjuncts)
        rules = [RULE_REORDER]
        if self._pushed_string(conjuncts, ordered):
            rules.append(RULE_PUSH_STRING)
        return self._tag(_fold_intersect(ordered), *rules)

    def _ordered(self, conjuncts: list[AlgebraExpr]) -> list[AlgebraExpr]:
        """Cheapest-first stable order: (cost class, estimate, input order)."""
        keyed = []
        for index, part in enumerate(conjuncts):
            keyed.append((self._cost_class(part), self._quick_estimate(part), index, part))
        keyed.sort(key=lambda item: item[:3])
        return [part for *_, part in keyed]

    @staticmethod
    def _cost_class(expr: AlgebraExpr) -> int:
        """0 = leaf set (free mask), 1 = split-free subtree (in-place
        passes), 2 = contains a structural join (may rebuild)."""
        if not expr.children():
            return 0
        return 1 if is_split_free(expr) else 2

    def _quick_estimate(self, expr: AlgebraExpr) -> float:
        """Selectivity used only for ordering (full model in ``_estimate``)."""
        store: dict[int, float] = {}
        _estimate(expr, self.stats, store)
        return store.get(id(expr), float(self.stats.tree_nodes))

    @staticmethod
    def _pushed_string(before: list[AlgebraExpr], after: list[AlgebraExpr]) -> bool:
        """Did a string-containment leaf move ahead of a structural join?"""

        def has_join(expr: AlgebraExpr) -> bool:
            return bool(expr.children()) and not is_split_free(expr)

        for ordering, direction in ((before, False), (after, True)):
            seen_join = False
            for part in ordering:
                if has_join(part):
                    seen_join = True
                elif (
                    isinstance(part, NamedSet)
                    and is_string_set(part.name)
                    and seen_join != direction
                ):
                    # before: a string leaf after a join; after: before one.
                    break
            else:
                return False
        return True

    # -- union / difference ----------------------------------------------

    def _rewrite_union(self, expr: Union) -> AlgebraExpr:
        left = self.rewrite(expr.left)
        right = self.rewrite(expr.right)
        # An EmptySet branch evaluates to a fresh empty selection with no
        # structural effect, so eliminating it is always split-safe.
        if isinstance(left, EmptySet):
            return self._tag(right, RULE_PROPAGATE_EMPTY)
        if isinstance(right, EmptySet):
            return self._tag(left, RULE_PROPAGATE_EMPTY)
        if left is expr.left and right is expr.right:
            return expr
        return Union(left, right)

    def _rewrite_difference(self, expr: Difference) -> AlgebraExpr:
        left = self.rewrite(expr.left)
        right = self.rewrite(expr.right)
        if isinstance(left, EmptySet):
            if is_split_free(right):
                # ∅ − R = ∅, and skipping R eliminates only in-place work.
                return self._tag(EmptySet(), RULE_PROPAGATE_EMPTY)
        elif isinstance(right, EmptySet):
            # L − ∅ = L (the dropped branch is a no-op leaf).
            return self._tag(left, RULE_PROPAGATE_EMPTY)
        if left is expr.left and right is expr.right:
            return expr
        return Difference(left, right)


def _fold_intersect(parts: list[AlgebraExpr]) -> AlgebraExpr:
    expr = parts[0]
    for part in parts[1:]:
        expr = Intersect(expr, part)
    return expr


# ----------------------------------------------------------------------
# Cardinality estimation (tree-node units)
# ----------------------------------------------------------------------

#: Fallback selectivity for a set the catalog knows nothing about (an
#: unknown string needle with no sketch): a tenth of the document.
_UNKNOWN_FRACTION = 0.1


def _estimate(
    expr: AlgebraExpr, stats: DocumentStats, store: dict[int, float]
) -> float:
    """Estimated tree-node cardinality of every node of ``expr``.

    Fills ``store`` (``id(node) -> estimate``) bottom-up and returns the
    root estimate.  The model and its assumptions (independence of
    conjuncts, uniform fanout/depth, the string sketch) are documented in
    docs/optimizer.md; estimates are clamped to ``[0, tree_nodes]``.
    """
    total = float(stats.tree_nodes) if stats.tree_nodes < 1e300 else 1e300
    estimate = _estimate_node(expr, stats, total, store)
    return estimate


def _estimate_node(
    expr: AlgebraExpr, stats: DocumentStats, total: float, store: dict[int, float]
) -> float:
    cached = store.get(id(expr))
    if cached is not None:
        return cached
    children = [
        _estimate_node(child, stats, total, store) for child in expr.children()
    ]
    value: float
    if isinstance(expr, EmptySet):
        value = 0.0
    elif isinstance(expr, (RootSet, ContextSet)):
        # The default context is the root singleton; a user context is
        # unknowable here and assumed small.
        value = 1.0
    elif isinstance(expr, AllNodes):
        value = total
    elif isinstance(expr, NamedSet):
        known = stats.tree_count(expr.name)
        if known is not None:
            value = float(known) if known < 1e300 else 1e300
        elif is_string_set(expr.name):
            from repro.model.schema import string_set_needle

            sketched = stats.string_selectivity(string_set_needle(expr.name))
            value = sketched if sketched is not None else total * _UNKNOWN_FRACTION
        else:
            value = total * _UNKNOWN_FRACTION
    elif isinstance(expr, AxisApply):
        value = _axis_image_estimate(expr.axis, children[0], stats, total)
    elif isinstance(expr, Intersect):
        value = children[0] * children[1] / total if total else 0.0
    elif isinstance(expr, Union):
        overlap = children[0] * children[1] / total if total else 0.0
        value = children[0] + children[1] - overlap
    elif isinstance(expr, Difference):
        keep = 1.0 - (children[1] / total if total else 0.0)
        value = children[0] * max(keep, 0.0)
    elif isinstance(expr, RootFilter):
        # All-or-nothing: N weighted by P(root selected) ~ |S| / N.
        value = total * min(1.0, children[0] / total if total else 0.0)
    else:  # pragma: no cover - future algebra nodes
        value = total * _UNKNOWN_FRACTION
    value = min(max(value, 0.0), total)
    store[id(expr)] = value
    return value


def _axis_image_estimate(
    axis: str, source: float, stats: DocumentStats, total: float
) -> float:
    """Expected size of a forward axis image (see docs/optimizer.md)."""
    fanout = max(stats.avg_fanout, 1e-9)
    if axis == "self":
        return source
    if axis == "child":
        return source * stats.avg_fanout
    if axis == "descendant":
        return source * max(stats.avg_subtree - 1.0, 0.0)
    if axis == "descendant-or-self":
        return source * max(stats.avg_subtree, 1.0)
    if axis == "parent":
        return source / fanout
    if axis == "ancestor":
        return min(total, source * max(stats.avg_depth, 1.0))
    if axis == "ancestor-or-self":
        return min(total, source * (max(stats.avg_depth, 1.0) + 1.0))
    if axis in ("following-sibling", "preceding-sibling"):
        return min(total, source * stats.avg_fanout / 2.0)
    if axis in ("following", "preceding"):
        return total / 2.0 if source >= 1.0 else source * total / 2.0
    return total * _UNKNOWN_FRACTION  # pragma: no cover - unknown axis

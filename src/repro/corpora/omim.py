"""OMIM-like (Online Mendelian Inheritance in Man) corpus.

OMIM records are long free-text entries about genes/disorders with a
clinical synopsis section; structurally they are flat and regular (paper:
5.8% / 7.0%, 962 vertices for 206k nodes).

Planted strings (Appendix A, OMIM queries): titles containing "LETHAL"; a
record with Text "consanguineous parents" *and* a LETHAL title (Q4); and a
Clinical_Synop where a Part "Metabolic" is followed by a sibling Synop
containing "Lactic acidosis" (Q5).
"""

from __future__ import annotations

import random

from repro.corpora.base import GeneratedCorpus, XMLBuilder, check_scale, rng_for, sentence

_PARTS = ("Inheritance", "Growth", "Neuro", "Cardiac", "Skeletal", "Metabolic")


def _record(builder: XMLBuilder, rng: random.Random, index: int, scale: int) -> None:
    lethal = index % 7 == 0
    q4_plant = index == min(14, scale - 1)
    q5_plant = scale > 1 and index % max(scale // 5, 1) == 1

    builder.open("Record")
    builder.leaf("No", str(100000 + index))
    title = sentence(rng, rng.randint(3, 7)).upper()
    if lethal or q4_plant:
        title = f"{title}, LETHAL FORM"
    builder.leaf("Title", title)
    for _ in range(rng.randint(0, 2)):
        builder.leaf("Alias", sentence(rng, 3).upper())
    body = sentence(rng, rng.randint(20, 60))
    if q4_plant:
        body = f"{body} born of consanguineous parents {sentence(rng, 10)}"
    builder.leaf("Text", body)
    builder.open("Clinical_Synop")
    for _ in range(rng.randint(1, 4)):
        builder.leaf("Part", rng.choice(_PARTS))
        builder.leaf("Synop", sentence(rng, rng.randint(3, 8)))
    if q5_plant:
        builder.leaf("Part", "Metabolic")
        builder.leaf("Synop", f"Lactic acidosis; {sentence(rng, 4)}")
    builder.close()
    for _ in range(rng.randint(1, 3)):
        builder.open("Reference")
        builder.leaf("Author", sentence(rng, 2).title())
        builder.leaf("Citation", sentence(rng, 6))
        builder.close()
    builder.leaf("Edited", f"{rng.randint(1, 12)}/{rng.randint(1, 28)}/1998")
    builder.close().newline()


def generate(scale: int = 800, seed: int = 0) -> GeneratedCorpus:
    """Generate ``scale`` OMIM-like records."""
    check_scale(scale)
    rng = rng_for("omim", scale, seed)
    builder = XMLBuilder()
    builder.open("ROOT").newline()
    for index in range(scale):
        _record(builder, rng, index, scale)
    builder.close()
    return GeneratedCorpus(name="omim", xml=builder.result(), scale=scale, seed=seed)

"""The baseline: Core XPath evaluation on uncompressed trees.

This is the ``O(|Q| x |T|)`` main-memory algorithm of [14] that the paper
compares against (section 6 argues the compressed engine is competitive even
on uncompressed data).  It evaluates the same algebra expressions, but over
plain Python sets of tree vertices, using the axis functions of
:mod:`repro.engine.axes_tree`.

It doubles as the test oracle: results are compared against the compressed
engine's decoded selections on the materialised tree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.model.instance import Instance
from repro.engine.axes_tree import TreeIndex, tree_axis
from repro.xpath.algebra import (
    AlgebraExpr,
    AllNodes,
    AxisApply,
    ContextSet,
    Difference,
    Intersect,
    NamedSet,
    RootFilter,
    RootSet,
    Union,
)
from repro.xpath.compiler import compile_query


@dataclass
class TreeResult:
    """A baseline result: plain tree-vertex set plus timing."""

    tree: Instance
    vertices: set[int]
    seconds: float

    def count(self) -> int:
        return len(self.vertices)


class TreeEvaluator:
    """Evaluates algebra expressions on a tree instance with native sets."""

    def __init__(self, tree: Instance, context: set[int] | None = None):
        self._index = TreeIndex(tree)
        self._tree = tree
        self._context = context

    def evaluate(self, query: str | AlgebraExpr) -> TreeResult:
        expr = compile_query(query) if isinstance(query, str) else query
        started = time.perf_counter()
        vertices = self._eval(expr)
        elapsed = time.perf_counter() - started
        return TreeResult(tree=self._tree, vertices=vertices, seconds=elapsed)

    def _eval(self, expr: AlgebraExpr) -> set[int]:
        tree = self._tree
        if isinstance(expr, NamedSet):
            if not tree.has_set(expr.name):
                raise EvaluationError(f"set {expr.name!r} is not in the tree schema")
            return tree.members(expr.name)
        if isinstance(expr, RootSet):
            return {tree.root}
        if isinstance(expr, AllNodes):
            return self._index.vertices
        if isinstance(expr, ContextSet):
            return set(self._context) if self._context is not None else {tree.root}
        if isinstance(expr, Union):
            return self._eval(expr.left) | self._eval(expr.right)
        if isinstance(expr, Intersect):
            return self._eval(expr.left) & self._eval(expr.right)
        if isinstance(expr, Difference):
            return self._eval(expr.left) - self._eval(expr.right)
        if isinstance(expr, AxisApply):
            return tree_axis(self._index, expr.axis, self._eval(expr.operand))
        if isinstance(expr, RootFilter):
            inner = self._eval(expr.operand)
            return self._index.vertices if tree.root in inner else set()
        raise EvaluationError(f"cannot evaluate algebra node {expr!r}")


def evaluate_on_tree(
    tree: Instance, query: str | AlgebraExpr, context: set[int] | None = None
) -> TreeResult:
    """One-shot convenience wrapper around :class:`TreeEvaluator`."""
    return TreeEvaluator(tree, context=context).evaluate(query)

"""TPC-D-like XML-ised relational data.

The paper includes TPC-D in the compression experiment only (footnote 10:
"as purely XML-ised relational data, querying it with XPath is not very
interesting") — it compresses to 15 vertices because every row has the
identical column layout.  We emit a lineitem-style table.
"""

from __future__ import annotations

from repro.corpora.base import GeneratedCorpus, XMLBuilder, check_scale, rng_for

_COLUMNS = (
    "orderkey",
    "partkey",
    "suppkey",
    "linenumber",
    "quantity",
    "extendedprice",
    "discount",
    "tax",
    "returnflag",
    "shipdate",
)


def generate(scale: int = 1000, seed: int = 0) -> GeneratedCorpus:
    """Generate a ``scale``-row lineitem table (fixed column layout)."""
    check_scale(scale)
    rng = rng_for("tpcd", scale, seed)
    builder = XMLBuilder()
    builder.open("table").newline()
    for row in range(scale):
        builder.open("row")
        for column in _COLUMNS:
            builder.leaf(column, str(rng.randint(0, 99999)))
        builder.close()
        if row % 50 == 49:
            builder.newline()
    builder.close()
    return GeneratedCorpus(name="tpcd", xml=builder.result(), scale=scale, seed=seed)

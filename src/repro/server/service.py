"""The concurrent query service: pool + request coalescing over BatchEvaluator.

One :class:`QueryService` serves many concurrent callers over a
:class:`repro.server.catalog.Catalog`.  The serving pipeline per request:

1. the query text is parsed/compiled once (bounded LRU, shared across
   requests) and its **schema key** derived — for catalog documents that is
   just the sorted tuple of string-containment needles, since documents are
   shredded with every tag;
2. the request joins the *pending micro-batch* of its
   ``(document, schema key)``; the first arrival becomes the batch
   **leader**, optionally sleeps a bounded coalescing window, then drains
   the queue and evaluates everything in it as **one**
   :class:`repro.engine.batch.BatchEvaluator` run — so requests that arrive
   while a batch is executing coalesce naturally into the next run and the
   cross-query common-subexpression cache becomes the server's hot path;
3. the resident master instance comes from the LRU
   :class:`repro.server.pool.InstancePool`; evaluation never mutates it.

Two evaluation strategies (the ``mode`` parameter; ``bench_server.py``
measures both, DESIGN.md section 7 discusses the numbers):

* ``"snapshot"`` — each batch evaluates on a fresh ``copy()`` of the
  immutable master, taken under the entry lock and discarded after the
  results are decoded.  Copies are cheap (list copies sharing the master's
  cached traversal orders) and batches for *different* keys can evaluate
  concurrently.
* ``"persistent"`` — each entry forks one long-lived working instance and
  every batch evaluates on it in place, under the entry lock.  No per-batch
  copy, and partial decompressions are paid once and reused by later
  batches; the working instance is reset (result snapshots dropped) after
  each batch so it cannot grow without bound.

Results are decoded to plain dictionaries *before* any cleanup, so a
response never depends on live engine state.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from collections import OrderedDict
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field

# MAX_PATHS is re-exported: it was public here before the encodings moved
# to the shared envelope module, and callers still read the cap from us.
from repro.api.envelope import DEFAULT_LIMIT, MAX_PATHS, encode_result  # noqa: F401
from repro.engine.batch import BatchEvaluator
from repro.engine.results import QueryResult
from repro.errors import DeadlineExceededError, ReproError
from repro.model import planes
from repro.model.instance import Instance
from repro.server.catalog import Catalog
from repro.server.pool import InstancePool, PoolEntry
from repro.server.resilience import FAULTS, AdmissionController, Deadline
from repro.xpath.algebra import AlgebraExpr
from repro.xpath.compiler import compile_query, required_strings, required_tags
from repro.xpath.optimizer import OptimizationResult, optimize as optimize_plan
from repro.xpath.parser import parse_query


def decode_result(result: QueryResult, paths: int = 0, limit: int = DEFAULT_LIMIT) -> dict:
    """Decode a :class:`QueryResult` into a plain response payload.

    A thin alias of :func:`repro.api.envelope.encode_result` — THE
    canonical wire shape, shared with :meth:`repro.api.ResultSet.to_json`
    — kept under its historical name because the benchmarks build their
    expected payloads through it, so "server response == direct
    evaluation" is a byte comparison of canonical JSON.
    """
    return encode_result(result, paths=paths, limit=limit)


def kernel_info() -> dict:
    """Which bit-plane kernel tier this process evaluates with.

    Surfaced in ``/stats`` and attached to structured plans so ``explain``
    shows whether queries run on the NumPy word kernels or the pure-stdlib
    fallback (see :mod:`repro.model.planes`).
    """
    return {
        "tier": planes.kernel_tier(),
        "numpy": planes.numpy_active(),
        "plane_format_version": planes.PLANE_FORMAT_VERSION,
    }


class CompiledQueryCache:
    """Bounded LRU of ``query text -> (expr, tags, strings)``.

    Shared seam between the in-process :class:`QueryService` and the
    cluster dispatcher (:mod:`repro.server.cluster`): the dispatcher needs
    a query's *string schema* to route by ``(document, string-schema)``
    without evaluating anything, and caching here keeps repeat routing
    decisions parse-free.  Thread-safe.
    """

    def __init__(self, limit: int = 1024):
        self.limit = limit
        self._entries: OrderedDict[
            str, tuple[AlgebraExpr, tuple[str, ...], tuple[str, ...]]
        ] = OrderedDict()
        self._lock = threading.Lock()

    def entry(self, query_text: str) -> tuple[AlgebraExpr, tuple[str, ...], tuple[str, ...]]:
        """``(expr, tags, strings)`` for a query text, LRU-cached."""
        with self._lock:
            entry = self._entries.get(query_text)
            if entry is not None:
                self._entries.move_to_end(query_text)
                return entry
        ast = parse_query(query_text)  # outside the lock: parsing may be slow
        expr = compile_query(ast)
        entry = (
            expr,
            tuple(sorted(required_tags(ast))),
            tuple(sorted(required_strings(ast))),
        )
        with self._lock:
            # A racing thread may have inserted this key already; evicting
            # then would drop an unrelated entry for a no-op overwrite.
            if query_text not in self._entries:
                while len(self._entries) >= self.limit:
                    self._entries.popitem(last=False)
            self._entries[query_text] = entry
        return entry

    def seed(
        self,
        query_text: str,
        expr: AlgebraExpr,
        tags: tuple[str, ...],
        strings: tuple[str, ...],
    ) -> None:
        """Adopt an externally-compiled query (a ``repro.api.PreparedQuery``).

        An existing entry is kept (and refreshed, like any cache hit), so
        racing seeds and lookups of one text are harmless.
        """
        with self._lock:
            if query_text in self._entries:
                self._entries.move_to_end(query_text)
                return
            while len(self._entries) >= self.limit:
                self._entries.popitem(last=False)
            self._entries[query_text] = (expr, tuple(tags), tuple(strings))


#: Batch-size histogram bucket upper bounds (queries per executed batch).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


@dataclass
class ServiceStats:
    """Aggregate serving counters (returned by ``/stats``)."""

    requests: int = 0
    batches: int = 0
    max_batch_size: int = 0
    #: Requests that shared their evaluation with at least one other request.
    coalesced_requests: int = 0
    errors: int = 0
    #: Requests answered with ``deadline_exceeded`` instead of a result.
    deadline_expired: int = 0
    #: Per-bucket (non-cumulative) batch-size counts; last slot is +Inf.
    batch_size_counts: list[int] = field(
        default_factory=lambda: [0] * (len(BATCH_SIZE_BUCKETS) + 1)
    )
    #: Total queries over all observed batches (the histogram's _sum).
    batch_size_sum: int = 0
    #: Mutation batches successfully applied and published.
    mutations_applied: int = 0
    #: Mutation batches refused or failed (nothing published).
    mutations_failed: int = 0
    #: Individual ops applied, per op name (one batch may carry several).
    mutation_ops: dict = field(default_factory=dict)

    def observe_batch(self, size: int) -> None:
        self.batch_size_counts[bisect_left(BATCH_SIZE_BUCKETS, size)] += 1
        self.batch_size_sum += size

    def observe_mutation(self, ops: dict) -> None:
        self.mutations_applied += 1
        for op, count in ops.items():
            self.mutation_ops[op] = self.mutation_ops.get(op, 0) + count

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "max_batch_size": self.max_batch_size,
            "coalesced_requests": self.coalesced_requests,
            "errors": self.errors,
            "deadline_expired": self.deadline_expired,
            "batch_sizes": {
                "le": list(BATCH_SIZE_BUCKETS),
                "counts": list(self.batch_size_counts),
                "sum": self.batch_size_sum,
                "count": sum(self.batch_size_counts),
            },
            "mutations": {
                "applied": self.mutations_applied,
                "failed": self.mutations_failed,
                "ops": dict(self.mutation_ops),
            },
        }


class _Pending:
    """The pending micro-batch of one ``(document, schema key)``."""

    __slots__ = ("mutex", "queue", "busy")

    def __init__(self) -> None:
        self.mutex = threading.Lock()
        self.queue: list[tuple["_Request", Future]] = []
        self.busy = False


@dataclass
class _Request:
    query_text: str
    expr: AlgebraExpr
    tags: tuple[str, ...]
    paths: int
    limit: int
    deadline: Deadline | None = None
    #: Request trace ID (minted at accept by the HTTP front-ends, or
    #: client-supplied); echoed in the response payload when present.
    trace: str | None = None


class QueryService:
    """Concurrent load-once/query-forever serving over a catalog.

    Thread-safe; every public method may be called from any number of
    threads concurrently.
    """

    COMPILED_CACHE_LIMIT = 1024

    def __init__(
        self,
        catalog: Catalog,
        mode: str = "snapshot",
        window: float = 0.0,
        max_batch: int = 64,
        pool_capacity: int = 8,
        axes: str = "functional",
        request_timeout: float = 120.0,
        max_queue: int = 0,
        rate_limit: float = 0.0,
        degraded_shed_rate: float = 1.0,
        optimize: bool = True,
    ):
        if mode not in ("snapshot", "persistent"):
            raise ReproError(f"unknown evaluation mode {mode!r}")
        self.catalog = catalog
        self.mode = mode
        #: Cost-based plan optimization over the catalog's shred-time
        #: statistics.  Per-document: a document published without usable
        #: statistics (``Catalog.document_stats`` → ``None``) is served
        #: with unoptimized plans — never an error.
        self.optimize = optimize
        self.window = window
        self.max_batch = max(1, max_batch)
        self.axes = axes
        self.request_timeout = request_timeout
        self.pool = InstancePool(capacity=pool_capacity)
        self.admission = AdmissionController(max_queue=max_queue, rate_limit=rate_limit)
        #: Sheds/second above which :meth:`health_dict` reports ``degraded``.
        self.degraded_shed_rate = degraded_shed_rate
        self.stats = ServiceStats()
        self._stats_lock = threading.Lock()
        self._pending: dict[tuple, _Pending] = {}
        self._pending_lock = threading.Lock()
        self._compiled = CompiledQueryCache(limit=self.COMPILED_CACHE_LIMIT)
        #: Optimized plans, LRU-keyed ``(query text, document, registered
        #: stamp)`` — the stamp invalidates on re-registration, when the
        #: statistics (and with them the right rewrites) may change.
        self._optimized: OrderedDict[tuple, OptimizationResult] = OrderedDict()
        self._optimized_lock = threading.Lock()

    # -- compilation -----------------------------------------------------

    def _compiled_entry(self, query_text: str):
        """``(expr, tags, strings)`` for a query text, LRU-cached."""
        return self._compiled.entry(query_text)

    def compiled_entry(self, query_text: str):
        """``(expr, tags, strings)`` — the seam ``repro.api`` prepares through."""
        return self._compiled.entry(query_text)

    def seed_compiled(
        self,
        query_text: str,
        expr: AlgebraExpr,
        tags: tuple[str, ...],
        strings: tuple[str, ...],
    ) -> None:
        """Adopt an externally-compiled query into the shared LRU."""
        self._compiled.seed(query_text, expr, tags, strings)

    def _optimized_for(
        self, document: str, catalog_entry, query_text: str, expr: AlgebraExpr
    ) -> OptimizationResult:
        """The (cached) optimization of ``expr`` against a document's stats.

        Statistics come from the catalog's persisted ``stats.json``
        (version-checked there); a document without usable statistics gets
        the identity optimization — the unoptimized plan — so serving
        never depends on statistics being present.  The cache keys on the
        entry's ``doc_version`` as well as its registration stamp: two
        registrations can land on the same wall-clock stamp (remove +
        re-add within timer resolution), and a mutation changes the
        statistics without the name changing — the version counter is the
        one key that moves on every publish.
        """
        key = (query_text, document, catalog_entry.registered_at, catalog_entry.doc_version)
        with self._optimized_lock:
            entry = self._optimized.get(key)
            if entry is not None:
                self._optimized.move_to_end(key)
                return entry
        stats = self.catalog.document_stats(document)  # outside the lock: disk
        entry = optimize_plan(expr, stats)
        with self._optimized_lock:
            if key not in self._optimized:
                while len(self._optimized) >= self.COMPILED_CACHE_LIMIT:
                    self._optimized.popitem(last=False)
            self._optimized[key] = entry
        return entry

    # -- the public entry point ------------------------------------------

    def query(
        self,
        document: str,
        query_text: str,
        paths: int = 0,
        limit: int = DEFAULT_LIMIT,
        deadline: Deadline | None = None,
        client: str | None = None,
        trace: str | None = None,
    ) -> dict:
        """Answer one query; concurrent callers coalesce into shared batches.

        Raises :class:`repro.errors.CatalogError` for unknown documents and
        the usual XPath errors for malformed queries — both *before* the
        request joins a batch, so bad requests never poison good ones.
        ``deadline`` is the request's end-to-end budget: it is checked at
        admission, again before the request's batch evaluates (an expired
        request never occupies a batch slot), and bounds how long the
        caller blocks on its future.  ``client`` identifies the caller for
        per-client rate limiting; admission sheds with
        :class:`repro.errors.OverloadedError` before any work is done.
        ``trace`` is the request's trace ID (minted at accept by the HTTP
        front-ends); it rides through coalescing and is echoed in the
        response payload.
        """
        if deadline is not None and deadline.expired:
            with self._stats_lock:
                self.stats.deadline_expired += 1
            deadline.check("request")  # dead on arrival: shed before admission
        self.admission.admit(client)
        try:
            return self._admitted_query(document, query_text, paths, limit, deadline, trace)
        finally:
            self.admission.release()

    def _admitted_query(
        self,
        document: str,
        query_text: str,
        paths: int,
        limit: int,
        deadline: Deadline | None,
        trace: str | None = None,
    ) -> dict:
        catalog_entry = self.catalog.entry(document)  # raises when unknown
        expr, tags, strings = self._compiled_entry(query_text)
        if self.optimize:
            expr = self._optimized_for(
                document, catalog_entry, query_text, expr
            ).expr
        request = _Request(
            query_text=query_text,
            expr=expr,
            tags=tags,
            paths=paths,
            limit=limit,
            deadline=deadline,
            trace=trace,
        )
        # The registration stamp and document version are both part of the
        # residency key: a document removed and re-registered under the same
        # name gets fresh keys, so a master loaded by a query racing the
        # removal (it can land in the pool *after* the eviction scan) is
        # unreachable to later queries — stale data is never served, it
        # just ages out of the LRU.  The version covers mutations too: a
        # mutated document is a new key, and in-flight queries holding the
        # previous key finish on their snapshot (readers never block).
        key = (document, strings, catalog_entry.registered_at, catalog_entry.doc_version)
        future: Future = Future()
        pending = self._pending_for(key)
        with pending.mutex:
            pending.queue.append((request, future))
            lead = not pending.busy
            if lead:
                pending.busy = True
        with self._stats_lock:
            self.stats.requests += 1
        if lead:
            self._drain(key, pending)
        timeout = self.request_timeout
        if deadline is not None:
            timeout = min(timeout, max(deadline.remaining(), 0.0))
        try:
            return future.result(timeout=timeout)
        except FuturesTimeoutError:
            if deadline is not None and deadline.expired:
                with self._stats_lock:
                    self.stats.deadline_expired += 1
                raise DeadlineExceededError(
                    f"deadline expired before a result for {query_text!r} was ready"
                ) from None
            raise

    def evict(self, document: str) -> int:
        """Drop every resident pool instance of ``document``; return count."""
        return self.pool.evict(lambda key: key[0] == document)

    # -- mutation --------------------------------------------------------

    def mutate(self, document: str, mutations) -> dict:
        """Apply a mutation batch to a served document; returns the outcome.

        Delegates durability and publication to
        :meth:`repro.server.catalog.Catalog.mutate` (journal append →
        incremental maintenance → staged version publish), then evicts the
        document's resident masters so the next query loads the new
        version.  In-flight queries keep evaluating on their snapshot —
        their pool keys carry the old ``doc_version`` — so readers never
        block on this writer.
        """
        started = time.perf_counter()
        try:
            entry = self.catalog.mutate(document, mutations)
        except ReproError:
            with self._stats_lock:
                self.stats.mutations_failed += 1
            raise
        evicted = self.evict(document)
        batch = [
            mutation
            for mutation in (mutations if not isinstance(mutations, dict) else [mutations])
        ]
        ops: dict[str, int] = {}
        for mutation in batch:
            op = mutation["op"] if isinstance(mutation, dict) else mutation.op
            ops[op] = ops.get(op, 0) + 1
        with self._stats_lock:
            self.stats.observe_mutation(ops)
        return {
            "document": document,
            "doc_version": entry.doc_version,
            "applied": len(batch),
            "ops": ops,
            "seconds": time.perf_counter() - started,
            "maintenance_seconds": entry.shred_seconds,
            "pool_entries_evicted": evicted,
            "dag_vertices": entry.dag_vertices,
            "skeleton_nodes": entry.skeleton_nodes,
        }

    # -- plans -----------------------------------------------------------

    def instance_info(self, document: str, strings: tuple[str, ...]) -> dict:
        """Where a query over ``(document, strings)`` would be answered from.

        The cached-instance provenance attached to structured plans:
        whether the master is currently resident in the pool (a pool hit)
        and which evaluation mode batches would run under.  Raises
        :class:`repro.errors.CatalogError` for unknown documents.
        """
        entry = self.catalog.entry(document)
        key = (document, tuple(strings), entry.registered_at, entry.doc_version)
        return {
            "source": "pool",
            "mode": self.mode,
            "resident": key in self.pool.keys(),
            "strings": list(strings),
            "kernel": kernel_info(),
            "load": self.pool.load_info(key),
        }

    def explain(self, document: str, query_text: str, analyze: bool = False) -> dict:
        """The structured plan of ``query_text`` against a served document.

        The ``/explain`` payload: the :class:`repro.api.Plan` as JSON with
        pool-residency provenance attached.  Compilation goes through the
        same LRU as :meth:`query`, so explaining is parse-free for hot
        texts and a malformed query fails with the same error the query
        path would raise.

        When the service optimizes, the plan is the optimized tree with
        per-node ``est_cardinality`` and rule tags (see the contract in
        :mod:`repro.api.plan`).  ``analyze=True`` additionally *executes*
        the plan — on a private copy of the pooled master, never mutating
        served state — and attaches measured ``actual`` DAG/tree counts to
        every node, the estimated-vs-actual view.  Analyze runs without
        runtime short-circuiting so every node gets a measurement.
        """
        from repro.api.plan import Plan

        catalog_entry = self.catalog.entry(document)
        expr, tags, strings = self._compiled_entry(query_text)
        optimization = None
        plan_expr = expr
        if self.optimize:
            optimization = self._optimized_for(
                document, catalog_entry, query_text, expr
            )
            plan_expr = optimization.expr
        actuals = None
        if analyze:
            actuals = self._measure(document, catalog_entry, plan_expr, tags, strings)
        plan = Plan.from_compiled(
            query_text, expr, tags, strings, optimization=optimization, actuals=actuals
        )
        plan.instance = self.instance_info(document, strings)
        payload = {"document": document, "query": query_text, "plan": plan.to_dict()}
        if analyze:
            payload["analyzed"] = True
        return payload

    def optimized_entry(self, document: str, query_text: str):
        """The cached :class:`OptimizationResult` for a served query.

        ``None`` when the service runs unoptimized; with statistics
        unavailable for the document the result is the identity
        optimization (``optimized=False``, no annotations).  The seam
        :meth:`repro.api.Database.explain` reads optimizer metadata
        through — the same cached object :meth:`query` evaluates, so node
        identities line up with :meth:`measure_plan`.
        """
        if not self.optimize:
            return None
        catalog_entry = self.catalog.entry(document)
        expr, _, _ = self._compiled_entry(query_text)
        return self._optimized_for(
            document, catalog_entry, query_text, expr
        )

    def measure_plan(self, document: str, query_text: str) -> dict[int, dict]:
        """Execute the served plan and measure per-node actual cardinalities.

        ``id(node) -> {"dag_count", "tree_count"}`` over the same
        expression tree :meth:`optimized_entry` (or, unoptimized, the
        compiled cache) returns — evaluated on a private copy of the
        pooled master, so served state is never mutated.
        """
        catalog_entry = self.catalog.entry(document)
        expr, tags, strings = self._compiled_entry(query_text)
        if self.optimize:
            expr = self._optimized_for(
                document, catalog_entry, query_text, expr
            ).expr
        return self._measure(document, catalog_entry, expr, tags, strings)

    def _measure(
        self,
        document: str,
        catalog_entry,
        expr: AlgebraExpr,
        tags: tuple[str, ...],
        strings: tuple[str, ...],
    ) -> dict[int, dict]:
        """Measure ``expr``'s per-node cardinalities on the pooled master.

        Evaluation runs on a private copy (the same instance
        :meth:`query` would use, so actuals describe real serving state).
        """
        from repro.engine.evaluator import measure_actuals

        key = (document, strings, catalog_entry.registered_at, catalog_entry.doc_version)
        entry = self.pool.get_or_load(key, lambda: self._load_master(key))
        with entry.lock:
            working = entry.instance.copy()
        for tag in tags:
            if not working.has_set(tag):
                working.ensure_set(tag)
        return measure_actuals(working, expr, axes=self.axes, copy=False)

    def stats_dict(self) -> dict:
        with self._stats_lock:
            service = self.stats.as_dict()
        return {
            "service": service,
            "pool": self.pool.stats(),
            "mode": self.mode,
            "optimize": self.optimize,
            "admission": self.admission.stats(),
            "quarantined": self.catalog.quarantined(),
            "kernel": kernel_info(),
            "doc_versions": {
                entry.name: entry.doc_version for entry in self.catalog.entries()
            },
        }

    def health_dict(self) -> dict:
        """Health beyond alive/dead: ``ok`` or ``degraded`` plus the reasons.

        The service is *degraded* (still serving, but not at full fidelity
        or capacity) when documents are quarantined after integrity
        failures or the recent shed rate crossed the configured threshold.
        The HTTP front-end maps ``degraded`` to a distinct status code so
        probes can tell "fine" from "limping" without parsing the body.
        """
        reasons: list[str] = []
        quarantined = self.catalog.quarantined()
        if quarantined:
            reasons.append(f"{len(quarantined)} quarantined document(s)")
        shed_rate = self.admission.shed_rate()
        if shed_rate > self.degraded_shed_rate:
            reasons.append(f"shedding {shed_rate:.1f} requests/s")
        return {
            "status": "degraded" if reasons else "ok",
            "reasons": reasons,
            "quarantined": quarantined,
            "shed_rate": round(shed_rate, 3),
        }

    def resident_keys(self) -> list[tuple]:
        """The ``(document, strings)`` pairs currently resident in the pool."""
        return [(key[0], key[1]) for key in self.pool.keys()]

    # -- lifecycle (uniform surface with the cluster dispatcher) ---------

    def wait_ready(self, timeout: float = 10.0) -> bool:
        """In-process service: always ready once constructed."""
        return True

    def close(self, timeout: float = 10.0) -> None:
        """Nothing to tear down: the in-process service owns no processes."""

    # -- coalescing ------------------------------------------------------

    def _pending_for(self, key: tuple) -> _Pending:
        with self._pending_lock:
            pending = self._pending.get(key)
            if pending is None:
                pending = self._pending[key] = _Pending()
            return pending

    def _drain(self, key: tuple, pending: _Pending) -> None:
        """Leader loop: evaluate queued batches until the queue stays empty.

        The leader (the thread whose request found the key idle) optionally
        sleeps the coalescing window once, then repeatedly takes up to
        ``max_batch`` queued requests and evaluates them as one batch.
        Requests arriving *while* a batch executes are picked up by the next
        iteration — natural micro-batching under load, no added latency
        when idle (window 0).  When the queue stays empty the key's pending
        entry is removed from the registry, so `_pending` is bounded by the
        number of keys with in-flight requests, not by every
        ``(document, string-schema)`` a client ever mentioned.  (A submitter
        still holding the removed entry simply becomes its own leader; a
        concurrent replacement entry for the same key is harmless — the two
        leaders serialise on the pool entry's lock.)
        """
        if self.window > 0:
            time.sleep(self.window)
        while True:
            with self._pending_lock:
                with pending.mutex:
                    batch = pending.queue[: self.max_batch]
                    del pending.queue[: len(batch)]
                    if not batch:
                        pending.busy = False
                        if self._pending.get(key) is pending:
                            del self._pending[key]
                        return
            try:
                self._execute(key, batch)
            except BaseException as error:  # noqa: BLE001 - forwarded to waiters
                with self._stats_lock:
                    self.stats.errors += len(batch)
                for _, future in batch:
                    if not future.done():
                        future.set_exception(error)

    # -- evaluation ------------------------------------------------------

    def _load_master(self, key: tuple) -> Instance:
        document, strings = key[0], key[1]
        return self.catalog.load_instance(document, strings)

    def _prune_expired(
        self, batch: list[tuple[_Request, Future]]
    ) -> list[tuple[_Request, Future]]:
        """Resolve already-expired requests; only live ones get batch slots.

        The deadline contract's cheap half: a request whose budget ran out
        while queued behind an earlier batch is answered with a structured
        ``deadline_exceeded`` immediately, instead of being evaluated for a
        waiter that already gave up.
        """
        live: list[tuple[_Request, Future]] = []
        expired = 0
        for request, future in batch:
            if request.deadline is not None and request.deadline.expired:
                expired += 1
                if not future.done():
                    future.set_exception(
                        DeadlineExceededError(
                            f"deadline expired before {request.query_text!r} "
                            f"reached evaluation"
                        )
                    )
            else:
                live.append((request, future))
        if expired:
            with self._stats_lock:
                self.stats.deadline_expired += expired
        return live

    def _execute(self, key: tuple, batch: list[tuple[_Request, Future]]) -> None:
        document = key[0]
        batch = self._prune_expired(batch)
        if not batch:
            return
        entry = self.pool.get_or_load(key, lambda: self._load_master(key))
        pool_hit = entry.hits > 0
        if entry.load_info is None:
            # First sight of this entry: record which on-disk form served
            # the cold load.  No-strings loads come from the document's
            # store (mmap skeleton or legacy chunks — it remembers which);
            # string-schema loads re-parse the original XML.
            if key[1]:
                entry.load_info = {"format": "parse", "mmap": False, "bytes_mapped": 0}
            else:
                entry.load_info = self.catalog.store(document).last_load_info
        if self.mode == "snapshot":
            with entry.lock:
                working = self._prepare(entry.instance.copy(), batch)
            # The master is only touched under the lock; the copy is private
            # to this batch, so evaluation runs outside it.  (Same-key
            # batches are still serialised by the per-key leader loop.)
            outcomes = self._evaluate(working, batch)
        else:
            with entry.lock:
                if entry.working is None:
                    # Fork once; the master stays pristine for re-forks.
                    entry.working = entry.instance.copy()
                working = self._prepare(entry.working, batch)
                outcomes = self._evaluate(working, batch, persistent_entry=entry)
        with self._stats_lock:
            self.stats.batches += 1
            self.stats.max_batch_size = max(self.stats.max_batch_size, len(batch))
            self.stats.observe_batch(len(batch))
            if len(batch) > 1:
                self.stats.coalesced_requests += len(batch)
            self.stats.errors += sum(
                1 for outcome in outcomes if isinstance(outcome, Exception)
            )
        for (request, future), outcome in zip(batch, outcomes):
            if future.done():
                continue
            if isinstance(outcome, Exception):
                future.set_exception(outcome)
                continue
            outcome.update(
                document=document,
                query=request.query_text,
                batched_with=len(batch),
                pool_hit=pool_hit,
                mode=self.mode,
            )
            if request.trace is not None:
                outcome["trace"] = request.trace
            future.set_result(outcome)

    @staticmethod
    def _batch_check(batch: list[tuple[_Request, Future]]):
        """The cooperative cancellation hook for one batch, or ``None``.

        Installed only when *every* request in the batch carries a
        deadline: the batch is abandoned (between per-query evaluations —
        the engine is never preempted mid-query) once the **latest** of
        those deadlines has passed, i.e. once no waiter could still use a
        result.  Mixed batches keep running for their unbounded waiters;
        the expired ones are answered by their own ``future.result``
        timeout converting to ``deadline_exceeded``.
        """
        deadlines = [request.deadline for request, _ in batch]
        if not deadlines or any(d is None for d in deadlines):
            return None
        horizon = Deadline(max(d.at for d in deadlines))

        def check() -> None:
            horizon.check("batch (every waiter's deadline passed)")

        return check

    @staticmethod
    def _prepare(working: Instance, batch) -> Instance:
        """Materialise (empty) sets for tags the document never uses.

        The one-shot pipeline pre-creates requested tag sets at load time;
        the catalog schema only has tags the document actually contains, so
        a query over an absent tag must select nothing instead of failing.
        """
        for request, _ in batch:
            for tag in request.tags:
                if not working.has_set(tag):
                    working.ensure_set(tag)
        return working

    def _evaluate(
        self,
        working: Instance,
        batch: list[tuple[_Request, Future]],
        persistent_entry: PoolEntry | None = None,
    ) -> list[dict | Exception]:
        """Evaluate one coalesced batch; per-request outcomes, not all-or-nothing.

        Decoding failures (e.g. a client-supplied path ``limit`` blown by a
        huge selection) are captured *per request*, so one bad request never
        poisons its batch-mates.  In persistent mode the working instance is
        handed back to the entry on every successful evaluation (snapshots
        dropped), and **discarded** if evaluation itself died mid-batch —
        a half-evaluated instance still carries populated temp sets that a
        later evaluator's fresh counter would silently reuse.
        """
        FAULTS.fire("service.evaluate", batch=len(batch))
        evaluator = BatchEvaluator(
            working, copy=False, axes=self.axes, short_circuit=self.optimize
        )
        check = self._batch_check(batch)
        try:
            result = evaluator.evaluate_batch(
                [request.expr for request, _ in batch], check=check
            )
        except BaseException:
            if persistent_entry is not None:
                persistent_entry.working = None  # re-fork from the pristine master
            raise
        outcomes: list[dict | Exception] = []
        for (request, _), query_result in zip(batch, result):
            try:
                payload = decode_result(
                    query_result, paths=request.paths, limit=request.limit
                )
                payload["seconds"] = query_result.seconds
                outcomes.append(payload)
            except Exception as error:  # noqa: BLE001 - forwarded to one waiter
                outcomes.append(error)
        if persistent_entry is not None:
            # Keep the (possibly rebuilt) final instance for the next batch,
            # minus this batch's durable result snapshots — everything was
            # decoded above, so nothing references them anymore.
            evaluator.reset_results()
            persistent_entry.working = evaluator.instance
        return outcomes

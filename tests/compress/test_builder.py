"""Tests for the streaming DagBuilder (section 4's one-scan construction)."""

import pytest

from repro.compress.builder import DagBuilder
from repro.compress.minimize import is_compressed, minimize
from repro.errors import InstanceError
from repro.model.equivalence import equivalent
from repro.model.instance import tree_instance


def build_from_spec(builder: DagBuilder, spec) -> int:
    sets, children = spec
    if isinstance(sets, str):
        sets = (sets,)
    builder.start_node()
    for child in children:
        build_from_spec(builder, child)
    return builder.end_node(sets)


class TestDagBuilder:
    def test_builds_minimal_bib(self, bib_tree):
        from tests.conftest import BIB_SPEC

        builder = DagBuilder()
        build_from_spec(builder, BIB_SPEC)
        instance = builder.finish()
        instance.validate()
        assert instance.num_vertices == 5
        assert is_compressed(instance)
        assert equivalent(instance, minimize(bib_tree))

    def test_equal_subtrees_get_equal_ids(self):
        builder = DagBuilder()
        builder.start_node()
        first = builder.leaf(("x",))
        second = builder.leaf(("x",))
        other = builder.leaf(("y",))
        builder.end_node(("root",))
        builder.finish()
        assert first == second
        assert first != other

    def test_sibling_runs_compressed_incrementally(self):
        builder = DagBuilder()
        builder.start_node()
        for _ in range(1000):
            builder.leaf(("x",))
        root = builder.end_node(("root",))
        instance = builder.finish()
        assert instance.children(root) == ((0, 1000),)

    def test_repeat_last(self):
        builder = DagBuilder()
        builder.start_node()
        builder.leaf(("x",))
        builder.repeat_last(999)
        root = builder.end_node(("root",))
        instance = builder.finish()
        assert instance.children(root)[0][1] == 1000

    def test_repeat_last_without_sibling_raises(self):
        builder = DagBuilder()
        builder.start_node()
        with pytest.raises(InstanceError):
            builder.repeat_last(5)

    def test_end_without_start_raises(self):
        builder = DagBuilder()
        with pytest.raises(InstanceError):
            builder.end_node()

    def test_finish_with_open_nodes_raises(self):
        builder = DagBuilder()
        builder.start_node()
        with pytest.raises(InstanceError, match="still open"):
            builder.finish()

    def test_finish_with_two_roots_raises(self):
        builder = DagBuilder()
        builder.leaf(("a",))
        builder.leaf(("b",))
        with pytest.raises(InstanceError, match="exactly one root"):
            builder.finish()

    def test_finish_with_no_root_raises(self):
        with pytest.raises(InstanceError):
            DagBuilder().finish()

    def test_depth_tracks_open_nodes(self):
        builder = DagBuilder()
        assert builder.depth == 0
        builder.start_node()
        builder.start_node()
        assert builder.depth == 2
        builder.end_node()
        assert builder.depth == 1

    def test_masked_fast_path_matches_named_path(self):
        named = DagBuilder()
        named.start_node()
        named.leaf(("x",))
        named.end_node(("r",))
        named_instance = named.finish()

        masked = DagBuilder()
        mask_x = masked.mask_of(("x",))
        mask_r = masked.mask_of(("r",))
        masked.start_node()
        masked.leaf_masked(mask_x)
        masked.end_node_masked(mask_r)
        masked_instance = masked.finish()
        assert equivalent(named_instance, masked_instance)

    def test_streaming_equals_batch_compression(self):
        # Build the same random-ish document both ways.
        spec = (
            "r",
            [
                ("a", [("b", []), ("b", [])]),
                ("a", [("b", []), ("b", [])]),
                ("c", [("a", [("b", []), ("b", [])])]),
            ],
        )
        builder = DagBuilder()
        build_from_spec(builder, spec)
        streamed = builder.finish()
        batch = minimize(tree_instance(spec))
        assert streamed.num_vertices == batch.num_vertices
        assert equivalent(streamed, batch)

"""Compilation of Core XPath ASTs to the node-set algebra (section 3.1).

The main path is compiled *forward*: starting from {root} (absolute) or the
context set, each step applies its axis, intersects with the tag set, then
intersects with the compiled predicate sets.

Predicates are compiled *in reverse* (the Figure 3 trick): a relative path
``child::c/child::d`` used as a condition on ``n`` means "some c-child of n
has a d-child", which is the set ``parent(L_c ∩ parent(L_d))`` — each step's
axis is replaced by its inverse and the steps are traversed right-to-left,
so conditions cost plain set operations flowing towards the query root.

Absolute paths inside predicates compile through ``V|root`` (the operation
introduced for exactly this purpose in section 3.1).
"""

from __future__ import annotations

from repro.errors import XPathCompileError
from repro.model.schema import string_set
from repro.xpath.algebra import (
    AlgebraExpr,
    AllNodes,
    AxisApply,
    ContextSet,
    Difference,
    Intersect,
    NamedSet,
    RootFilter,
    RootSet,
    Union,
)
from repro.xpath.ast import (
    INVERSE_AXIS,
    AndExpr,
    Expr,
    LocationPath,
    NotExpr,
    OrExpr,
    PathUnion,
    Step,
    StringExpr,
)
from repro.xpath.parser import parse_query


def simplify_steps(steps: tuple[Step, ...]) -> tuple[Step, ...]:
    """Fuse ``descendant-or-self::*/child::t`` into ``descendant::t``.

    This undoes the parser's ``//`` desugaring where it is safe (the
    intermediate step carries no predicates), matching how the paper
    compiles ``//a`` directly to a descendant-axis application.
    """
    out: list[Step] = []
    index = 0
    while index < len(steps):
        step = steps[index]
        if (
            step.axis == "descendant-or-self"
            and step.test == "*"
            and not step.predicates
            and index + 1 < len(steps)
            and steps[index + 1].axis == "child"
        ):
            fused = steps[index + 1]
            out.append(Step("descendant", fused.test, fused.predicates))
            index += 2
        else:
            out.append(step)
            index += 1
    return tuple(out)


def compile_query(query: str | LocationPath | PathUnion) -> AlgebraExpr:
    """Compile a query string (or parsed AST) to an algebra expression."""
    ast = parse_query(query) if isinstance(query, str) else query
    if isinstance(ast, PathUnion):
        return _fold(Union, [_compile_path_forward(path) for path in ast.paths])
    return _compile_path_forward(ast)


def _compile_path_forward(path: LocationPath) -> AlgebraExpr:
    expr: AlgebraExpr = RootSet() if path.absolute else ContextSet()
    for step in simplify_steps(path.steps):
        expr = AxisApply(step.axis, expr)
        expr = _apply_tests(expr, step)
    return expr


def _apply_tests(expr: AlgebraExpr, step: Step) -> AlgebraExpr:
    if step.test != "*":
        expr = Intersect(expr, NamedSet(step.test))
    for predicate in step.predicates:
        expr = Intersect(expr, _compile_predicate(predicate))
    return expr


def _compile_predicate(predicate: Expr) -> AlgebraExpr:
    """The set of nodes satisfying ``predicate`` (always a subset test via ∩)."""
    if isinstance(predicate, OrExpr):
        return _fold(Union, [_compile_predicate(part) for part in predicate.parts])
    if isinstance(predicate, AndExpr):
        return _fold(Intersect, [_compile_predicate(part) for part in predicate.parts])
    if isinstance(predicate, NotExpr):
        return Difference(AllNodes(), _compile_predicate(predicate.part))
    if isinstance(predicate, StringExpr):
        return NamedSet(string_set(predicate.needle))
    if isinstance(predicate, LocationPath):
        return _compile_path_reversed(predicate)
    raise XPathCompileError(f"cannot compile predicate {predicate!r}")


def _compile_path_reversed(path: LocationPath) -> AlgebraExpr:
    """Reverse-compile a path used as an existence condition.

    For steps ``a_1::t_1[p_1]/.../a_n::t_n[p_n]`` the condition set is::

        a_1^-1( t_1 ∩ p_1 ∩ a_2^-1( t_2 ∩ p_2 ∩ ... a_n^-1? ... ))

    built right-to-left.  Absolute condition paths additionally go through
    ``V|root``: the document either satisfies them everywhere or nowhere.
    """
    steps = simplify_steps(path.steps)
    expr: AlgebraExpr | None = None
    for step in reversed(steps):
        matched = _step_match_set(step)
        if expr is not None:
            matched = Intersect(matched, expr) if not isinstance(matched, AllNodes) else expr
        expr = AxisApply(INVERSE_AXIS[step.axis], matched)
    if expr is None:
        # A bare '/' condition: only the root satisfies "having a root here".
        expr = RootSet()
    if path.absolute:
        # root in expr  <=>  the absolute path matches somewhere.
        return RootFilter(expr)
    return expr


def _step_match_set(step: Step) -> AlgebraExpr:
    expr: AlgebraExpr = AllNodes() if step.test == "*" else NamedSet(step.test)
    for predicate in step.predicates:
        condition = _compile_predicate(predicate)
        expr = condition if isinstance(expr, AllNodes) else Intersect(expr, condition)
    return expr


def _fold(op, parts: list[AlgebraExpr]) -> AlgebraExpr:
    expr = parts[0]
    for part in parts[1:]:
        expr = op(expr, part)
    return expr


def required_tags(query: str | LocationPath | PathUnion) -> set[str]:
    """All tag names a query mentions — the per-query schema of section 4."""
    from repro.xpath.ast import walk

    ast = parse_query(query) if isinstance(query, str) else query
    tags: set[str] = set()
    for node in walk(ast):
        if isinstance(node, LocationPath):
            for step in node.steps:
                if step.test != "*":
                    tags.add(step.test)
    return tags


def required_strings(query: str | LocationPath | PathUnion) -> set[str]:
    """All string-containment constraints a query mentions."""
    from repro.xpath.ast import walk

    ast = parse_query(query) if isinstance(query, str) else query
    return {node.needle for node in walk(ast) if isinstance(node, StringExpr)}

"""Edge paths (section 2.1): the bridge between an instance and its tree.

An *edge path* from the root to a vertex is the sequence of child positions
``i1 ... in`` taken at each step.  The set of all edge paths of an instance is
exactly the vertex set of its unique equivalent tree ``T(I)``
(Proposition 2.2), so edge paths are how a selection on a compressed DAG is
interpreted as a selection of tree nodes.

Enumerating edge paths is exponential in general (that is the whole point of
the compression), so this module offers:

* :func:`tree_node_counts` — per-vertex counts ``|Pi(v)|`` by top-down
  dynamic programming (linear in the DAG, used for Figure 7 column 8);
* :func:`tree_size` — ``|V^{T(I)}|`` without materialising the tree;
* :func:`iter_edge_paths` / :func:`edge_path_set` — bounded explicit
  enumeration, used by tests as a brute-force equivalence oracle.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import DecompressionLimitError
from repro.model.instance import Instance


def tree_node_counts(instance: Instance) -> dict[int, int]:
    """For each reachable vertex ``v``, the number of edge paths root -> v.

    ``counts[root] == 1``; an edge ``v -> w`` with multiplicity ``m``
    contributes ``m * counts[v]`` paths to ``w``.  Exact big-integer
    arithmetic — compressed instances can represent astronomically large
    trees.
    """
    counts: dict[int, int] = {}
    for vertex in instance.topological_order():
        counts.setdefault(vertex, 0)
        if vertex == instance.root:
            counts[vertex] += 1
        multiplier = counts[vertex]
        for child, count in instance.children(vertex):
            counts[child] = counts.get(child, 0) + multiplier * count
    return counts


def tree_size(instance: Instance) -> int:
    """``|V^{T(I)}|``: the number of nodes of the equivalent tree."""
    return sum(tree_node_counts(instance).values())


def tree_edge_count(instance: Instance) -> int:
    """``|E^{T(I)}|``, which is always ``tree_size - 1``."""
    return tree_size(instance) - 1


def selected_tree_count(instance: Instance, name: str) -> int:
    """How many *tree* nodes the DAG selection ``name`` represents.

    This is the paper's Figure 7 column (8): the sum of ``|Pi(v)|`` over the
    selected DAG vertices ``v``.
    """
    counts = tree_node_counts(instance)
    return sum(counts.get(v, 0) for v in instance.members(name))


def iter_edge_paths(
    instance: Instance, target: int | None = None, limit: int = 1_000_000
) -> Iterator[tuple[int, tuple[int, ...]]]:
    """Yield ``(vertex, edge_path)`` pairs in depth-first document order.

    Edge positions are 1-based as in the paper (``v -i-> w``).  If ``target``
    is given, only paths ending at that vertex are yielded (but the whole
    tree is still walked).  Raises :class:`DecompressionLimitError` after
    ``limit`` tree nodes, since the tree may be exponentially larger than the
    instance.
    """
    produced = 0
    # Iterative DFS over (vertex, path) with explicit expansion of runs.
    stack: list[tuple[int, tuple[int, ...]]] = [(instance.root, ())]
    while stack:
        vertex, path = stack.pop()
        produced += 1
        if produced > limit:
            raise DecompressionLimitError(
                f"edge-path enumeration exceeded limit of {limit} tree nodes"
            )
        if target is None or vertex == target:
            yield vertex, path
        position = instance.out_degree(vertex)
        for child in reversed(list(instance.expanded_children(vertex))):
            stack.append((child, path + (position,)))
            position -= 1


def edge_path_set(instance: Instance, limit: int = 100_000) -> frozenset[tuple[int, ...]]:
    """``Pi(V)``: the set of all edge paths of the instance (bounded)."""
    return frozenset(path for _, path in iter_edge_paths(instance, limit=limit))


def set_path_sets(
    instance: Instance, limit: int = 100_000
) -> dict[str, frozenset[tuple[int, ...]]]:
    """``Pi(S)`` for every set ``S`` of the schema (bounded enumeration)."""
    collected: dict[str, set[tuple[int, ...]]] = {name: set() for name in instance.schema}
    names = instance.schema
    row_masks = instance.row_masks()
    for vertex, path in iter_edge_paths(instance, limit=limit):
        mask = row_masks[vertex]
        for i, name in enumerate(names):
            if mask >> i & 1:
                collected[name].add(path)
    return {name: frozenset(paths) for name, paths in collected.items()}

"""Section 3.3's remark: query results are not necessarily minimal.

"It is easy to re-compress, but we suspect that this will rarely pay off in
practice."  We measure exactly that: for the decompression-heavy Appendix A
queries, how many vertices re-minimisation reclaims and what it costs.
"""

from __future__ import annotations

import pytest

from repro.bench.queries import queries_for
from repro.bench.tables import fmt_int, format_table
from repro.compress.minimize import minimize
from repro.engine.evaluator import CompressedEvaluator
from repro.engine.pipeline import load_for_query

from conftest import register_report

CASES = [
    ("treebank", "Q2"),
    ("treebank", "Q5"),
    ("xmark", "Q2"),
    ("shakespeare", "Q2"),
    ("baseball", "Q4"),
]

_ROWS = []


@pytest.mark.parametrize("corpus,query_id", CASES)
def test_recompression_gain(benchmark, corpus_cache, corpus, query_id):
    xml = corpus_cache(corpus)
    query_text = queries_for(corpus)[query_id]
    instance = load_for_query(xml, query_text).instance
    result = CompressedEvaluator(instance).evaluate(query_text)
    before = len(result.instance.preorder())

    recompressed = benchmark(lambda: minimize(result.instance))
    after = recompressed.num_vertices
    _ROWS.append(
        [
            corpus,
            query_id,
            fmt_int(len(instance.preorder())),
            fmt_int(before),
            fmt_int(after),
            f"{(1 - after / before) * 100:.1f}%" if before else "-",
        ]
    )
    # Re-compression never grows the instance and preserves the selection.
    assert after <= before
    from repro.model.paths import selected_tree_count

    assert selected_tree_count(recompressed, result.set_name) == result.tree_count()


def _report():
    if not _ROWS:
        return None
    return format_table(
        ["corpus", "query", "|V| input", "|V| result", "|V| re-min", "reclaimed"],
        _ROWS,
        title="Section 3.3 — re-compressing query results (rarely pays off)",
    )


register_report(_report)

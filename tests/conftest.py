"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.model.instance import Instance, tree_instance


# ----------------------------------------------------------------------
# Canonical paper examples
# ----------------------------------------------------------------------

#: The Example 1.1 bibliography skeleton as a nested spec.
BIB_SPEC = (
    "bib",
    [
        ("book", [("title", []), ("author", []), ("author", []), ("author", [])]),
        ("paper", [("title", []), ("author", [])]),
        ("paper", [("title", []), ("author", [])]),
    ],
)


@pytest.fixture
def bib_tree() -> Instance:
    """The uncompressed Example 1.1 skeleton (12 nodes)."""
    return tree_instance(BIB_SPEC)


@pytest.fixture
def figure2_compressed() -> Instance:
    """Figure 2(a): the compressed bibliography instance, built by hand.

    v3 = title leaf, v5 = author leaf, v2 = book, v4 = paper,
    v1 = bib root with children (book, paper, paper).
    """
    instance = Instance(["bib", "book", "paper", "title", "author"])
    v3 = instance.new_vertex(["title"])
    v5 = instance.new_vertex(["author"])
    v2 = instance.new_vertex(["book"], [(v3, 1), (v5, 3)])
    v4 = instance.new_vertex(["paper"], [(v3, 1), (v5, 1)])
    v1 = instance.new_vertex(["bib"], [(v2, 1), (v4, 2)])
    instance.set_root(v1)
    return instance


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------

LABELS = ("a", "b", "c")


def tree_specs(max_depth: int = 4, max_children: int = 4):
    """Strategy generating nested (label, children) tree specs."""
    labels = st.sampled_from(LABELS)
    return st.recursive(
        labels.map(lambda l: (l, [])),
        lambda children: st.tuples(labels, st.lists(children, max_size=max_children)),
        max_leaves=24,
    )


@st.composite
def random_tree_instances(draw) -> Instance:
    """Strategy generating small random labeled tree instances."""
    spec = draw(tree_specs())
    return tree_instance(spec, schema=LABELS)


@st.composite
def random_dag_instances(draw) -> Instance:
    """Strategy generating random *compressed-ish* DAG instances.

    Built bottom-up in layers: each new vertex picks children (with small
    multiplicities) among previously created vertices, which guarantees
    acyclicity; the final vertex adopts all roots of the partial forest so
    the instance is rooted and fully reachable.
    """
    instance = Instance(LABELS)
    n = draw(st.integers(min_value=1, max_value=12))
    has_parent: set[int] = set()
    for index in range(n):
        sets = draw(st.sets(st.sampled_from(LABELS), max_size=2))
        if index == 0:
            children: list[tuple[int, int]] = []
        else:
            targets = draw(
                st.lists(st.integers(min_value=0, max_value=index - 1), max_size=4)
            )
            counts = draw(
                st.lists(
                    st.integers(min_value=1, max_value=3),
                    min_size=len(targets),
                    max_size=len(targets),
                )
            )
            children = list(zip(targets, counts))
        vertex = instance.new_vertex(sets, children)
        for child, _ in children:
            has_parent.add(child)
    orphans = [v for v in range(n) if v not in has_parent and v != n - 1]
    if orphans:
        extra = [(v, 1) for v in orphans]
        instance.set_children(n - 1, list(instance.children(n - 1)) + extra)
    instance.set_root(n - 1)
    instance.validate()
    return instance

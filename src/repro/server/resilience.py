"""The resilience layer: deadlines, admission control, breakers, fault seams.

PRs 3-5 made the serving stack fast; this module makes it fail *usefully*.
Four primitives, shared by the in-process service, the worker fleet, and
the HTTP front-end:

* :class:`Deadline` — an end-to-end time budget carried from the HTTP
  header (``X-Repro-Deadline-Ms``) or CLI flag through coalescing into
  batch evaluation and across the worker wire.  Wherever the budget runs
  out, the caller gets a structured ``deadline_exceeded`` envelope instead
  of a request silently occupying a batch slot nobody is waiting on.
* :class:`AdmissionController` — bounded admission with load-shedding.
  A depth cap on concurrently admitted requests and per-client token
  buckets; both shed with :class:`~repro.errors.OverloadedError` (HTTP 429
  + ``Retry-After``) *at the door*, so the latency of accepted requests
  stays bounded instead of every request queueing into collapse.
* :class:`CircuitBreaker` — per worker shard: N consecutive
  :class:`~repro.errors.WorkerUnavailableError`\\ s open the breaker, the
  dispatcher routes the shard's keys to the next-best slot (the fleet
  degrades instead of 503ing everything), and after a cooldown one
  half-open probe decides whether the shard is back.
* :class:`FaultInjector` — the test seam the chaos suite drives.
  Injection points registered through the serving path (catalog, pool,
  service, worker wire, and the mutation write path's ``catalog.journal``
  seam, which fires at both the WAL append and the publish commit point)
  are no-ops in production (one attribute read) and inject latency /
  errors / corruption callbacks when armed; specs are plain primitives so
  a spawned worker can arm its own injector from the fleet config.

Everything here is thread-safe and stdlib-only.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque

from repro.errors import DeadlineExceededError, OverloadedError


class Deadline:
    """An absolute end-to-end time budget on the monotonic clock.

    Carried by value (the absolute ``at`` timestamp) rather than as a
    remaining duration, so queue wait anywhere along the path — the
    coalescer's pending queue, a worker's request pipe — keeps counting
    against the budget.  ``CLOCK_MONOTONIC`` is machine-wide on every
    platform the fleet spawns on, so ``at`` crosses the worker wire as a
    plain float and means the same instant in the worker process.
    """

    __slots__ = ("at",)

    def __init__(self, at: float):
        self.at = at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        return cls(time.monotonic() + seconds)

    @classmethod
    def after_ms(cls, milliseconds: float) -> "Deadline":
        return cls(time.monotonic() + milliseconds / 1000.0)

    @classmethod
    def from_wire(cls, at: float | None) -> "Deadline | None":
        """Rebuild a deadline shipped across the worker wire (None = none)."""
        return None if at is None else cls(at)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.at - time.monotonic()

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.at

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        overrun = time.monotonic() - self.at
        if overrun >= 0:
            raise DeadlineExceededError(
                f"{what} exceeded its deadline by {1000 * overrun:.0f}ms"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "stamp", "_lock")

    def __init__(self, rate: float, burst: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = time.monotonic()
        self._lock = threading.Lock()

    def take(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available; return 0.0, else seconds until refill."""
        with self._lock:
            now = time.monotonic()
            self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
            self.stamp = now
            if self.tokens >= tokens:
                self.tokens -= tokens
                return 0.0
            return (tokens - self.tokens) / self.rate


class AdmissionController:
    """Bounded admission with per-client rate limits and shed accounting.

    ``max_queue`` caps concurrently *admitted* (in-flight) requests — 0
    disables the cap; ``rate_limit`` is per-client requests/second with a
    burst of ``rate_burst`` (default 2x the rate) — 0.0 disables it.  Both
    shed with :class:`OverloadedError`; sheds are timestamped so
    :meth:`shed_rate` can answer "is this service degraded *right now*"
    for the health endpoint.
    """

    #: Per-client buckets kept before the least-recently-limited is dropped.
    MAX_CLIENTS = 4096

    def __init__(
        self,
        max_queue: int = 0,
        rate_limit: float = 0.0,
        rate_burst: float | None = None,
        shed_window: float = 10.0,
    ):
        self.max_queue = max(0, int(max_queue))
        self.rate_limit = max(0.0, float(rate_limit))
        self.rate_burst = (
            float(rate_burst) if rate_burst else max(1.0, 2.0 * self.rate_limit)
        )
        self.shed_window = shed_window
        self._lock = threading.Lock()
        self._inflight = 0
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self._sheds: deque[float] = deque(maxlen=10_000)
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_rate_limited = 0

    # -- the admit/release pair ------------------------------------------

    def admit(self, client: str | None = None) -> None:
        """Admit one request or shed it with :class:`OverloadedError`.

        Callers must pair every successful ``admit`` with exactly one
        :meth:`release` (``try/finally``).  The queue-depth check runs
        first: a full service sheds before spending tokens, so a retrying
        client is not additionally penalised by its rate limit.
        """
        with self._lock:
            if self.max_queue and self._inflight >= self.max_queue:
                self.shed_queue_full += 1
                self._sheds.append(time.monotonic())
                raise OverloadedError(
                    f"admission queue is full ({self._inflight}/{self.max_queue} "
                    f"in flight); retry",
                    retry_after=0.5,
                )
            bucket = None
            if self.rate_limit and client is not None:
                bucket = self._buckets.get(client)
                if bucket is None:
                    while len(self._buckets) >= self.MAX_CLIENTS:
                        self._buckets.popitem(last=False)
                    bucket = TokenBucket(self.rate_limit, self.rate_burst)
                    self._buckets[client] = bucket
                else:
                    self._buckets.move_to_end(client)
            self._inflight += 1
        if bucket is not None:
            wait = bucket.take()
            if wait > 0.0:
                with self._lock:
                    self._inflight -= 1
                    self.shed_rate_limited += 1
                    self._sheds.append(time.monotonic())
                raise OverloadedError(
                    f"client {client!r} is over its rate limit "
                    f"({self.rate_limit:g}/s); retry",
                    retry_after=wait,
                )
        with self._lock:
            self.admitted += 1

    def release(self) -> None:
        with self._lock:
            self._inflight -= 1

    # -- observability ---------------------------------------------------

    def shed_rate(self, window: float | None = None) -> float:
        """Sheds per second over the trailing ``window`` (default configured)."""
        window = window if window is not None else self.shed_window
        cutoff = time.monotonic() - window
        with self._lock:
            recent = sum(1 for stamp in self._sheds if stamp >= cutoff)
        return recent / window if window > 0 else 0.0

    def stats(self) -> dict:
        shed_rate = self.shed_rate()  # outside the lock: it takes it itself
        with self._lock:
            return {
                "max_queue": self.max_queue,
                "rate_limit": self.rate_limit,
                "inflight": self._inflight,
                "admitted": self.admitted,
                "shed_queue_full": self.shed_queue_full,
                "shed_rate_limited": self.shed_rate_limited,
                "shed_rate": round(shed_rate, 3),
                "clients_tracked": len(self._buckets),
            }


class CircuitBreaker:
    """A three-state breaker guarding one worker shard.

    ``closed`` (healthy) -> ``open`` after ``threshold`` *consecutive*
    failures -> ``half-open`` after ``cooldown`` seconds, admitting exactly
    one probe: its success closes the breaker, its failure re-opens it for
    another cooldown.  While open, :meth:`allow` is False and the
    dispatcher routes around the shard.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(self, threshold: int = 5, cooldown: float = 2.0):
        self.threshold = max(1, int(threshold))
        self.cooldown = cooldown
        self._lock = threading.Lock()
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        self.opens = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        # Caller holds the lock.
        if (
            self._state == self.OPEN
            and time.monotonic() - self._opened_at >= self.cooldown
        ):
            self._state = self.HALF_OPEN

    def allow(self) -> bool:
        """May a request go to this shard right now?

        In half-open state the first caller wins the probe slot (the state
        flips back to open-until-outcome semantics by re-stamping the
        cooldown), so a thundering herd cannot pile onto a maybe-dead
        worker all at once.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN:
                # Hand out one probe; further callers wait a full cooldown
                # unless the probe's success closes the breaker first.
                self._state = self.OPEN
                self._opened_at = time.monotonic()
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state != self.OPEN and self._failures >= self.threshold:
                self._state = self.OPEN
                self._opened_at = time.monotonic()
                self.opens += 1

    def stats(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "opens": self.opens,
            }


class _Fault:
    """One armed fault at one injection point."""

    __slots__ = ("error", "latency", "times", "callback", "hits")

    def __init__(self, error, latency, times, callback):
        self.error = error
        self.latency = latency
        self.times = times
        self.callback = callback
        self.hits = 0


class FaultInjector:
    """Named injection points for the chaos suite (no-ops unless armed).

    The serving path calls :meth:`fire` at its seams — catalog manifest
    and chunk reads, pool loads, service evaluation, the worker wire.
    Unarmed, a fire is a single attribute read.  Armed, a point can sleep
    (``latency``), raise (``error``), and/or run a ``callback`` (for
    corruption: the callback gets the fire-site context, e.g. the chunk
    path, and damages it for real).  ``times`` bounds how often a fault
    triggers before disarming itself — "fail the next 3 loads" without a
    test having to race the disarm.

    Fault specs also travel as primitives (``error`` as an
    ``ERROR_KINDS`` name via :meth:`arm_from_spec`), so a spawned worker
    process arms its own injector from the fleet's config dict.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._faults: dict[str, _Fault] = {}
        self.enabled = False

    def arm(
        self,
        point: str,
        *,
        error: BaseException | None = None,
        latency: float = 0.0,
        times: int | None = None,
        callback=None,
    ) -> None:
        """Arm ``point``; replaces any fault already armed there."""
        with self._lock:
            self._faults[point] = _Fault(error, latency, times, callback)
            self.enabled = True

    def arm_from_spec(self, spec: dict) -> None:
        """Arm points from a primitives-only dict (the worker-config channel).

        ``{point: {"kind": ..., "message": ..., "latency": ..., "times": ...}}``
        — ``kind`` names an :data:`repro.api.envelope.ERROR_KINDS` family.
        """
        from repro.api.envelope import rebuild_error

        for point, fault in (spec or {}).items():
            error = None
            if fault.get("kind"):
                error = rebuild_error(fault["kind"], fault.get("message", "injected"))
            self.arm(
                point,
                error=error,
                latency=fault.get("latency", 0.0),
                times=fault.get("times"),
            )

    def disarm(self, point: str | None = None) -> None:
        """Disarm one point, or everything (``None`` — the test teardown)."""
        with self._lock:
            if point is None:
                self._faults.clear()
            else:
                self._faults.pop(point, None)
            self.enabled = bool(self._faults)

    def fire(self, point: str, **context) -> None:
        """Trigger ``point`` if armed.  The production path: one attr read."""
        if not self.enabled:
            return
        with self._lock:
            fault = self._faults.get(point)
            if fault is None:
                return
            fault.hits += 1
            if fault.times is not None and fault.hits >= fault.times:
                self._faults.pop(point, None)
                self.enabled = bool(self._faults)
        if fault.latency:
            time.sleep(fault.latency)
        if fault.callback is not None:
            fault.callback(**context)
        if fault.error is not None:
            raise fault.error


#: The process-wide injector every serving seam fires through.  Production
#: never arms it; the chaos suite arms/disarms around each scenario.
FAULTS = FaultInjector()

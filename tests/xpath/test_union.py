"""Tests for top-level path union (path1 | path2)."""

import pytest

from repro.engine.pipeline import query
from repro.errors import XPathSyntaxError
from repro.xpath.algebra import Union
from repro.xpath.ast import PathUnion
from repro.xpath.compiler import compile_query, required_strings, required_tags
from repro.xpath.parser import parse_query

from tests.skeleton.test_loader import BIB_XML


class TestParse:
    def test_two_paths(self):
        ast = parse_query("//a | //b")
        assert isinstance(ast, PathUnion)
        assert len(ast.paths) == 2

    def test_three_paths(self):
        ast = parse_query("/a | /b | /c")
        assert len(ast.paths) == 3

    def test_single_path_stays_plain(self):
        from repro.xpath.ast import LocationPath

        assert isinstance(parse_query("//a"), LocationPath)

    def test_dangling_pipe_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_query("//a |")

    def test_string_rendering(self):
        assert str(parse_query("/a | /b")) == "/child::a | /child::b"


class TestCompile:
    def test_compiles_to_algebra_union(self):
        expr = compile_query("//a | //b")
        assert isinstance(expr, Union)

    def test_analysis_covers_all_branches(self):
        assert required_tags('//a["x"] | //b/c') == {"a", "b", "c"}
        assert required_strings('//a["x"] | //b["y"]') == {"x", "y"}


class TestEvaluate:
    def test_union_selects_both(self):
        result = query(BIB_XML, "//book | //paper")
        assert result.tree_count() == 3

    def test_union_with_predicates(self):
        result = query(BIB_XML, '//paper[author["Codd"]] | //book/title')
        assert result.tree_count() == 2

    def test_overlap_not_double_counted(self):
        result = query(BIB_XML, "//author | //book/author")
        assert result.tree_count() == 5

"""Scenario: querying a DBLP-scale bibliography (paper section 5, DBLP rows).

Generates the synthetic DBLP corpus, then runs the paper's five Appendix A
DBLP queries through the measured pipeline via the :mod:`repro.api` façade:
``repro.open(..., reparse_per_query=True)`` reproduces the paper's setup —
one scan extracts a compressed instance over exactly the schema each query
needs, evaluation happens purely in memory on the DAG, and the per-query
parse cost is read back off ``db.last_load``.

Run:  python examples/bibliography_queries.py [scale]
"""

import sys
import time

import repro
from repro.bench.queries import queries_for
from repro.corpora import generate


def main(scale: int = 5000) -> None:
    print(f"Generating a {scale}-record bibliography ...")
    started = time.perf_counter()
    corpus = generate("dblp", scale)
    print(f"  {corpus.megabytes:.1f} MB of XML in {time.perf_counter() - started:.2f}s\n")

    with repro.open(corpus.xml, reparse_per_query=True) as db:
        for query_id, xpath in queries_for("dblp").items():
            result = db.execute(xpath)
            loaded = db.last_load
            after_v, after_e = result.after
            print(f"{query_id}: {xpath}")
            print(
                f"    parse+compress {loaded.parse_seconds:6.2f}s -> "
                f"{result.before[0]:>6} vertices / {result.before[1]:>6} edges "
                f"(from {loaded.skeleton_nodes:,} skeleton nodes)"
            )
            print(
                f"    query {1000 * result.seconds:9.2f}ms -> "
                f"{after_v:>6} vertices / {after_e:>6} edges | "
                f"selected {result.dag_count()} dag / {result.tree_count()} tree"
            )
    print(
        "\nThe bibliography compresses to a few dozen vertices no matter the"
        "\nscale — record shapes repeat — so queries run in milliseconds on"
        "\ndata whose tree form has hundreds of thousands of nodes."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5000)

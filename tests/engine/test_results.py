"""Tests for query-result decoding (Figure 7 columns 5-8)."""

import pytest

from repro.engine.evaluator import evaluate
from repro.engine.pipeline import query
from repro.errors import DecompressionLimitError

from tests.skeleton.test_loader import BIB_XML


class TestQueryResult:
    def test_counts_consistent(self):
        result = query(BIB_XML, "//author")
        assert result.dag_count() == 1
        assert result.tree_count() == 5
        assert len(result.tree_paths()) == 5

    def test_vertices_accessor(self):
        result = query(BIB_XML, "//paper")
        assert result.vertices() <= set(result.instance.preorder())

    def test_before_after_sizes(self):
        result = query(BIB_XML, "/bib/book/author")
        before_v, before_e = result.before
        after_v, after_e = result.after
        assert after_v >= before_v
        assert after_e >= before_e
        assert result.decompression_ratio() >= 1.0

    def test_iter_tree_matches_pairs_paths_with_vertices(self):
        result = query(BIB_XML, "//title")
        matches = list(result.iter_tree_matches())
        assert len(matches) == 3
        for path, vertex in matches:
            assert result.instance.in_set(vertex, result.set_name)
            assert len(path) == 3  # doc -> bib -> record -> title

    def test_paths_in_document_order(self):
        result = query(BIB_XML, "//author")
        paths = result.tree_paths()
        assert paths == sorted(paths)

    def test_empty_result(self):
        result = query(BIB_XML, "//nonexistent")
        assert result.is_empty()
        assert result.tree_paths() == []
        assert result.tree_count() == 0

    def test_path_limit_enforced(self):
        from repro.corpora.binary_tree import compressed_instance

        result = evaluate(compressed_instance(40), "//a")
        with pytest.raises(DecompressionLimitError):
            result.tree_paths(limit=1000)

    def test_summary_contains_counts(self):
        result = query(BIB_XML, "//author")
        text = result.summary()
        assert "5 tree" in text

    def test_timing_recorded(self):
        result = query(BIB_XML, "//author")
        assert result.seconds > 0


class TestResultMemoisation:
    """Regression: summary() used to re-traverse the instance up to four
    times (dag_count, tree_count, and `after` each recomputed preorder /
    the path-count table). Results are read-only views, so every
    traversal-derived value is computed once and memoised."""

    def test_tree_counts_computed_once(self, monkeypatch):
        import repro.engine.results as results_module

        result = query(BIB_XML, "//author")
        calls = {"n": 0}
        real = results_module.tree_node_counts

        def counting(instance):
            calls["n"] += 1
            return real(instance)

        monkeypatch.setattr(results_module, "tree_node_counts", counting)
        result.tree_count()
        result.tree_count()
        result.summary()
        result.summary()
        assert calls["n"] == 1

    def test_after_and_dag_count_memoised(self):
        result = query(BIB_XML, "//author")
        assert result.after is result.after  # same memoised tuple object
        first = result.dag_count()
        assert result.dag_count() == first
        assert result._dag_count == first

    def test_memoised_values_match_fresh_result(self):
        fresh = query(BIB_XML, "//author")
        warmed = query(BIB_XML, "//author")
        warmed.summary()  # prime every memo
        assert warmed.dag_count() == fresh.dag_count()
        assert warmed.tree_count() == fresh.tree_count()
        assert warmed.after == fresh.after

"""Byte-span location and splicing of elements in the kept document text.

The catalog keeps every registered document's original text beside its
shredded chunks (string-schema reloads re-scan it), so a mutation must
edit *both* representations.  This module does the text half: it walks the
tokenizer's event stream — whose events carry exact byte offsets — down a
tree path of element-child ordinals, finds the target element's span, and
splices the edit in.  One pass, no DOM, and the spliced text re-parses to
exactly the mutated skeleton (the property oracle pins this).

Self-closing targets are handled structurally: appending into ``<a/>``
rewrites it as ``<a>...</a>`` (attribute blob preserved verbatim).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MutationError
from repro.mutation.ops import Mutation
from repro.xmlio.events import EndElement, StartElement
from repro.xmlio.tokenizer import _CLOSE_RE, _OPEN_RE, tokenize


@dataclass(frozen=True)
class ElementSpan:
    """Where one element lives in the document text."""

    #: Tag name of the element.
    name: str
    #: Offset of the ``<`` of the start tag.
    start: int
    #: Offset just past the ``>`` of the start tag.
    open_end: int
    #: Offset of the ``<`` of the end tag (== ``start`` when self-closing).
    close_start: int
    #: Offset just past the ``>`` of the end tag.
    end: int
    #: True for ``<name .../>`` forms.
    self_closing: bool


def locate(text: str, path: tuple[int, ...]) -> ElementSpan:
    """The byte span of the element at ``path`` (see :mod:`repro.mutation.ops`).

    Raises :class:`MutationError` when the path walks off the document —
    an ordinal past the last element child, or a path deeper than the tree.
    """
    target = tuple(path)
    counters = [0]  # element children seen so far at each open depth
    open_depth = 0
    match_depth = 0  # how many levels of the open chain lie on the target path
    awaiting_close_at: int | None = None
    start = None
    for event in tokenize(text):
        if isinstance(event, StartElement):
            depth = open_depth
            ordinal = counters[depth]
            counters[depth] += 1
            on_path = match_depth == depth and depth <= len(target)
            if on_path:
                wanted = 0 if depth == 0 else target[depth - 1]
                on_path = ordinal == wanted
            if on_path:
                if depth == len(target):
                    start = event.offset
                    awaiting_close_at = depth
                match_depth = depth + 1
            open_depth += 1
            counters.append(0)
        elif isinstance(event, EndElement):
            open_depth -= 1
            counters.pop()
            if match_depth > open_depth:
                match_depth = open_depth
            if awaiting_close_at is not None and open_depth == awaiting_close_at:
                assert start is not None
                open_match = _OPEN_RE.match(text, start)
                if text.startswith("</", event.offset):
                    close_match = _CLOSE_RE.match(text, event.offset)
                    return ElementSpan(
                        name=event.name,
                        start=start,
                        open_end=open_match.end(),
                        close_start=event.offset,
                        end=close_match.end(),
                        self_closing=False,
                    )
                # Self-closing: the end event carries the start tag's offset.
                return ElementSpan(
                    name=event.name,
                    start=start,
                    open_end=open_match.end(),
                    close_start=start,
                    end=open_match.end(),
                    self_closing=True,
                )
    raise MutationError(
        f"path {list(target)} addresses no element in the document "
        f"(an ordinal is past the last element child, or the path is too deep)"
    )


def splice(text: str, mutation: Mutation) -> tuple[str, str, str]:
    """Apply ``mutation`` to the document text.

    Returns ``(new_text, removed, inserted)`` where ``removed`` and
    ``inserted`` are the exact substrings taken out of / put into the
    document — the inputs of the incremental character-sketch patch
    (:func:`repro.mutation.apply.patch_chars`).
    """
    span = locate(text, mutation.path)
    if mutation.op == "delete_subtree":
        removed = text[span.start : span.end]
        return text[: span.start] + text[span.end :], removed, ""
    if mutation.op == "replace_subtree":
        removed = text[span.start : span.end]
        fragment = mutation.xml or ""
        return text[: span.start] + fragment + text[span.end :], removed, fragment
    # append_child: insert just before the close tag; a self-closing target
    # is first expanded to an explicit open/close pair.
    fragment = mutation.xml or ""
    if span.self_closing:
        open_match = _OPEN_RE.match(text, span.start)
        name, attr_blob, _ = open_match.groups()
        rebuilt = f"<{name}{attr_blob}>{fragment}</{name}>"
        removed = text[span.start : span.end]
        return text[: span.start] + rebuilt + text[span.end :], removed, rebuilt
    return (
        text[: span.close_start] + fragment + text[span.close_start :],
        "",
        fragment,
    )

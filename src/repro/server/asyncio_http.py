"""The asyncio HTTP front-end (``repro serve --frontend async``).

One event loop owns accept, HTTP/1.1 parsing, deadline/trace stamping,
and response writes; evaluation never blocks the loop — each parsed
request is bridged to a bounded ``ThreadPoolExecutor`` via
``run_in_executor``, where :meth:`repro.server.routes.Router.dispatch`
runs the exact route core the threaded front-end uses (admission,
coalescing, or the worker-fleet queues happen inside, as before).  The
loop therefore keeps accepting and shedding (429s are cheap) while slow
queries occupy executor threads, instead of burning one OS thread per
idle keep-alive connection.

Flow control and shutdown:

* **Bounded write buffering** — each connection's transport gets a
  64 KiB high-water mark and every response write awaits
  ``writer.drain()``, so a slow reader suspends only its own connection
  coroutine instead of buffering results without bound.
* **Graceful drain** — ``shutdown()`` stops the listener, cancels idle
  keep-alive connections immediately, lets in-flight requests finish
  their response write within ``drain_timeout`` seconds, then cancels
  stragglers.  The object surface (``serve_forever`` / ``shutdown`` /
  ``server_close`` / ``server_address`` / ``url`` / ``service``)
  matches :class:`repro.server.http.ReproHTTPServer`, so every harness
  — tests, benches, ``serve()`` — drives either front-end unchanged.
"""

from __future__ import annotations

import asyncio
import os
import socket
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus

from repro.server.metrics import ServerMetrics
from repro.server.routes import MAX_BODY, Headers, Request, Router

#: Per-connection transport write high-water mark (bytes): a slow reader
#: suspends its own coroutine at ``drain()`` once this much is queued.
WRITE_HIGH_WATER = 64 * 1024

#: Longest accepted request line + single header line (bytes).
MAX_LINE = 16 * 1024

#: Cap on header lines per request (parser sanity, not a protocol limit).
MAX_HEADERS = 100


class _BadRequest(Exception):
    """A framing-level refusal: (status, message, kind, close?)."""

    def __init__(self, status: int, message: str, kind: str, close: bool = True):
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.close = close


class AsyncReproHTTPServer:
    """Event-loop front-end with the same lifecycle surface as the threaded one.

    The listening socket binds in the constructor (fail-fast on a used
    port, and ``server_address`` reports the ephemeral port immediately);
    the event loop itself runs inside :meth:`serve_forever` on whatever
    thread calls it, exactly like ``ThreadingHTTPServer``.
    """

    def __init__(
        self,
        address: tuple[str, int],
        service,
        quiet: bool = True,
        default_deadline_ms: float = 0.0,
        executor_threads: int = 0,
        drain_timeout: float = 5.0,
    ):
        self.service = service
        self.quiet = quiet
        self.default_deadline_ms = default_deadline_ms
        self.drain_timeout = drain_timeout
        self._socket = socket.create_server(address, backlog=128, reuse_port=False)
        self.server_address = self._socket.getsockname()[:2]
        # Executor sizing: the bridge must hold more threads than the
        # admission queue admits so shed decisions (cheap) never wait
        # behind admitted work; 32 covers the default queue depths.
        workers = executor_threads or max(32, 4 * (os.cpu_count() or 1))
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-http"
        )
        self.metrics = ServerMetrics(lambda: self.service, frontend="async")
        self.router = Router(
            lambda: self.service,
            default_deadline_ms=default_deadline_ms,
            metrics=self.metrics,
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        #: connection task -> {"busy": bool}; drain cancels idle ones first.
        self._connections: dict[asyncio.Task, dict] = {}
        self._draining = False
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._closed = False

    @property
    def url(self) -> str:
        host, port = self.server_address
        return f"http://{host}:{port}"

    # -- lifecycle --------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the event loop on the calling thread until :meth:`shutdown`."""
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            # The reader limit bounds line buffering (readuntil); bodies
            # stream through readexactly and are capped by MAX_BODY instead.
            self._server = loop.run_until_complete(
                asyncio.start_server(self._on_client, sock=self._socket, limit=4 * MAX_LINE)
            )
            self._started.set()
            loop.run_forever()
        finally:
            try:
                loop.run_until_complete(self._drain())
            finally:
                try:
                    loop.run_until_complete(loop.shutdown_asyncgens())
                finally:
                    asyncio.set_event_loop(None)
                    loop.close()
                    self._loop = None
                    self._stopped.set()

    def shutdown(self) -> None:
        """Stop ``serve_forever`` from any thread; returns once drained."""
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(loop.stop)
        except RuntimeError:  # loop already closed
            return
        self._stopped.wait(timeout=self.drain_timeout + 10.0)

    def server_close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=False)
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - already closed by the loop
            pass

    # -- the connection coroutine ----------------------------------------

    async def _drain(self) -> None:
        """Close the listener, finish in-flight requests, cancel the rest."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:  # noqa: BLE001 - drain must complete
                pass
        for task, state in list(self._connections.items()):
            if not state["busy"]:
                task.cancel()
        deadline = time.monotonic() + self.drain_timeout
        while self._connections and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)

    async def _on_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        task = asyncio.current_task()
        state = {"busy": False}
        self._connections[task] = state
        self.metrics.connections.inc()
        transport = writer.transport
        transport.set_write_buffer_limits(high=WRITE_HIGH_WATER)
        try:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - already-dead socket
            pass
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) else ""
        try:
            await self._connection_loop(reader, writer, state, client)
        except (asyncio.CancelledError, ConnectionError):
            pass
        except Exception as error:  # noqa: BLE001 - one connection must not kill the loop
            self._log(f"connection error from {client}: {type(error).__name__}: {error}")
        finally:
            self._connections.pop(task, None)
            self.metrics.connections.dec()
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - peer may already be gone
                pass

    async def _connection_loop(self, reader, writer, state, client: str) -> None:
        loop = asyncio.get_running_loop()
        while not self._draining:
            try:
                request, keep_alive = await self._read_request(reader, client)
            except _BadRequest as refusal:
                # Build a minimal Request so the refusal still gets a trace
                # ID, the envelope, and a metrics sample.
                request = Request("BAD", "other", headers=Headers(), client=client)
                response = self.router.reject(
                    request, refusal.status, str(refusal), refusal.kind
                )
                await self._write_response(writer, response, keep_alive=False)
                self._access_log(request, response)
                return
            except asyncio.IncompleteReadError:
                return  # peer hung up mid-request
            if request is None:
                return  # clean EOF between requests
            state["busy"] = True
            try:
                response = await loop.run_in_executor(
                    self._executor, self.router.dispatch, request
                )
            finally:
                state["busy"] = False
            keep_alive = keep_alive and not self._draining
            await self._write_response(writer, response, keep_alive=keep_alive)
            self._access_log(request, response)
            if not keep_alive:
                return

    async def _read_request(self, reader, client: str):
        """Parse one request; returns ``(Request | None, keep_alive)``."""
        try:
            request_line = await reader.readuntil(b"\n")
        except asyncio.LimitOverrunError:
            raise _BadRequest(400, "request line too long", "bad-request") from None
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None, False  # clean EOF
            raise
        received_at = time.monotonic()
        if len(request_line) > MAX_LINE:
            raise _BadRequest(400, "request line too long", "bad-request")
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest(400, f"malformed request line: {parts[:3]!r}", "bad-request")
        method, path, version = parts
        headers = Headers()
        for _ in range(MAX_HEADERS):
            line = await reader.readuntil(b"\n")
            if len(line) > MAX_LINE:
                raise _BadRequest(400, "header line too long", "bad-request")
            stripped = line.strip()
            if not stripped:
                break
            name, separator, value = stripped.decode("latin-1").partition(":")
            if not separator:
                raise _BadRequest(400, f"malformed header line: {stripped!r}", "bad-request")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequest(400, "too many header lines", "bad-request")
        connection = (headers.get("connection") or "").lower()
        keep_alive = version == "HTTP/1.1" and connection != "close"
        try:
            length = int(headers.get("content-length", 0) or 0)
        except ValueError:
            raise _BadRequest(
                400, "Content-Length must be an integer", "bad-request"
            ) from None
        if length > MAX_BODY:
            # Refuse before reading: the body is unread, so the connection
            # cannot be re-synced — _BadRequest closes it.
            raise _BadRequest(
                413, f"request body over {MAX_BODY} bytes", "payload-too-large"
            )
        body = await reader.readexactly(length) if length > 0 else b""
        request = Request(
            method, path, headers=headers, body=body, client=client,
            received_at=received_at,
        )
        return request, keep_alive

    async def _write_response(self, writer, response, keep_alive: bool) -> None:
        try:
            phrase = HTTPStatus(response.status).phrase
        except ValueError:  # pragma: no cover - only standard statuses are used
            phrase = ""
        head_lines = [
            f"HTTP/1.1 {response.status} {phrase}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
        ]
        head_lines.extend(f"{name}: {value}" for name, value in response.headers.items())
        if not keep_alive:
            head_lines.append("Connection: close")
        head = ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + response.body)
        # Bounded buffering: suspend this connection (only) until the
        # transport's write buffer falls below the high-water mark.
        await writer.drain()

    # -- logging ----------------------------------------------------------

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"repro serve[async]: {message}", file=sys.stderr)

    def _access_log(self, request, response) -> None:
        if not self.quiet:
            self._log(
                f'{request.client} "{request.method} {request.path}" '
                f"{response.status} trace={request.trace}"
            )

"""Property test: the ``repro.api`` façade is value-identical to the engine.

For randomized query mixes over the binary-tree, relational, and xmark
corpora, a :class:`repro.api.Database` must decode *exactly* what
``Engine.query`` / ``Engine.query_batch`` decode — same selected DAG
vertices, same tree counts, same edge paths — whether queries run one at
a time or as a batch, and whether materialisation is streamed or eager.
The fragment tier must round-trip: a reassembled fragment, reparsed,
is a well-formed document whose root carries the matched tag.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro.corpora import binary_tree, relational
from repro.corpora.registry import CORPORA
from repro.engine.pipeline import Engine

CORPUS_XML = {
    "binary-tree": binary_tree.generate_xml(depth=5).xml,
    "relational": relational.generate_xml(8, 4, distinct_texts=True).xml,
    "xmark": CORPORA["xmark"].generate(30, 0).xml,
}

QUERY_POOLS = {
    "binary-tree": [
        "/a/b/a",
        "//b[a]",
        "//a/following-sibling::b",
        "/descendant::a[b]",
        "//a/b",
    ],
    "relational": [
        "/table/row/col0",
        '//row[col1["r1c1"]]/col2',
        "//col1/preceding-sibling::col0",
        "//row[col0]",
    ],
    "xmark": [
        "//item",
        '//item[payment["Creditcard"]]',
        "//site/regions",
        "//item/description",
        "//regions//item",
    ],
}

_databases: dict[str, repro.api.Database] = {}
_engines: dict[str, Engine] = {}


def database_for(corpus: str) -> repro.api.Database:
    if corpus not in _databases:
        _databases[corpus] = repro.open(CORPUS_XML[corpus])
    return _databases[corpus]


def engine_for(corpus: str) -> Engine:
    if corpus not in _engines:
        _engines[corpus] = Engine(CORPUS_XML[corpus], reparse_per_query=False)
    return _engines[corpus]


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_database_execute_matches_engine_query(data):
    corpus = data.draw(st.sampled_from(sorted(QUERY_POOLS)))
    query_text = data.draw(st.sampled_from(QUERY_POOLS[corpus]))
    mine = database_for(corpus).execute(query_text)
    theirs = engine_for(corpus).query(query_text)
    assert mine.vertices() == theirs.vertices(), (corpus, query_text)
    assert mine.dag_count() == theirs.dag_count(), (corpus, query_text)
    assert mine.tree_count() == theirs.tree_count(), (corpus, query_text)
    assert list(mine.iter_paths()) == theirs.tree_paths(), (corpus, query_text)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_database_batch_matches_engine_query_batch(data):
    corpus = data.draw(st.sampled_from(sorted(QUERY_POOLS)))
    mix = data.draw(
        st.lists(st.sampled_from(QUERY_POOLS[corpus]), min_size=1, max_size=4)
    )
    batch = database_for(corpus).execute_batch(mix)
    expected = Engine(CORPUS_XML[corpus]).query_batch(mix)
    assert len(batch) == len(expected.results)
    for query_text, mine, theirs in zip(mix, batch, expected):
        assert mine.tree_count() == theirs.tree_count(), (corpus, query_text)
        assert list(mine.iter_paths()) == theirs.tree_paths(), (corpus, query_text)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_streaming_equals_eager_materialisation(data):
    corpus = data.draw(st.sampled_from(sorted(QUERY_POOLS)))
    query_text = data.draw(st.sampled_from(QUERY_POOLS[corpus]))
    result = database_for(corpus).execute(query_text)
    eager = result.paths()
    assert list(result.iter_paths()) == eager, (corpus, query_text)
    prefix = data.draw(st.integers(min_value=0, max_value=5))
    assert result.paths(prefix) == eager[:prefix], (corpus, query_text)


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_fragment_round_trip(data):
    corpus = data.draw(st.sampled_from(sorted(QUERY_POOLS)))
    query_text = data.draw(st.sampled_from(QUERY_POOLS[corpus]))
    database = database_for(corpus)
    result = database.execute(query_text)
    for path, fragment in zip(result.paths(3), result.fragments(3)):
        if not path:
            continue  # the whole document: covered by the to_xml test below
        # A fragment reparsed is a well-formed document answering queries.
        inner = repro.open(fragment)
        assert inner.execute("/*").tree_count() == 1, (corpus, query_text)


def test_reassembled_document_answers_identically():
    # reassemble -> reparse -> the same query selects the same vertex set
    # (the corpora carry no attributes, so canonical reassembly is lossless
    # for every set the queries mention).
    for corpus, pool in QUERY_POOLS.items():
        reparsed = repro.open(database_for(corpus).to_xml())
        for query_text in pool:
            original = database_for(corpus).execute(query_text)
            round_tripped = reparsed.execute(query_text)
            assert round_tripped.vertices() == original.vertices(), (corpus, query_text)
            assert list(round_tripped.iter_paths()) == list(
                original.iter_paths()
            ), (corpus, query_text)

"""The mutation vocabulary: one op shape across HTTP, CLI, journal and API.

A mutation addresses its target by a **tree path**: the sequence of
element-child ordinals walked from the document's root element, with edge
multiplicities expanded — ``[]`` is the root element itself, ``[2]`` its
third element child, ``[2, 0]`` that child's first element child.  In
``attributes="nodes"`` documents the synthetic ``@name`` children do not
consume ordinals: paths always count *element* children, so the same path
means the same node in the text and in the shredded instance.

Three ops cover subtree-granular editing:

* ``append_child(path, xml)``  — append ``xml`` as the new last child of
  the element at ``path``;
* ``replace_subtree(path, xml)`` — replace the element at ``path``
  (including its whole subtree) with ``xml``;
* ``delete_subtree(path)``     — remove the element at ``path``; deleting
  the root element (``path=[]``) is refused — a document must keep one.

``xml`` must be a single well-formed element (it is shredded by the same
loader that registered the document, so malformed fragments are rejected
before anything is touched).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import MutationError

#: The supported mutation operations.
OPS = ("append_child", "replace_subtree", "delete_subtree")

#: Ops that carry an XML fragment payload.
_FRAGMENT_OPS = ("append_child", "replace_subtree")


@dataclass(frozen=True)
class Mutation:
    """One validated mutation: ``op`` at ``path``, optionally with ``xml``."""

    op: str
    path: tuple[int, ...]
    xml: str | None = None

    def __post_init__(self):
        if self.op not in OPS:
            raise MutationError(
                f"unknown mutation op {self.op!r}; supported: {', '.join(OPS)}"
            )
        if not isinstance(self.path, tuple) or not all(
            isinstance(step, int) and not isinstance(step, bool) and step >= 0
            for step in self.path
        ):
            raise MutationError(
                f"mutation path must be a sequence of non-negative element-child "
                f"ordinals, got {self.path!r}"
            )
        if self.op in _FRAGMENT_OPS:
            if not isinstance(self.xml, str) or not self.xml.strip():
                raise MutationError(f"{self.op} needs a non-empty 'xml' fragment")
        elif self.xml is not None:
            raise MutationError("delete_subtree takes no 'xml' fragment")
        if self.op == "delete_subtree" and not self.path:
            raise MutationError(
                "cannot delete the root element (a document must keep one); "
                "use replace_subtree to swap it"
            )

    def to_dict(self) -> dict:
        """The canonical JSON shape (journal records, HTTP bodies, patches)."""
        record: dict = {"op": self.op, "path": list(self.path)}
        if self.xml is not None:
            record["xml"] = self.xml
        return record

    @classmethod
    def from_dict(cls, raw: Mapping) -> "Mutation":
        """Validate one JSON-shaped mutation; raises :class:`MutationError`."""
        if not isinstance(raw, Mapping):
            raise MutationError(f"a mutation must be an object, got {type(raw).__name__}")
        unknown = set(raw) - {"op", "path", "xml"}
        if unknown:
            raise MutationError(f"unknown mutation field(s): {', '.join(sorted(unknown))}")
        op = raw.get("op")
        if not isinstance(op, str):
            raise MutationError("a mutation needs a string field 'op'")
        path = raw.get("path", [])
        if not isinstance(path, Sequence) or isinstance(path, (str, bytes)):
            raise MutationError("'path' must be a list of element-child ordinals")
        xml = raw.get("xml")
        if xml is not None and not isinstance(xml, str):
            raise MutationError("'xml' must be a string when given")
        try:
            steps = tuple(int(step) for step in path)
        except (TypeError, ValueError) as error:
            raise MutationError(f"non-integer path step: {error}") from None
        for given, step in zip(path, steps):
            if isinstance(given, bool) or (isinstance(given, float) and given != step):
                raise MutationError(f"non-integer path step: {given!r}")
        return cls(op=op, path=steps, xml=xml)


def as_mutations(raw: Iterable) -> list[Mutation]:
    """Validate a whole patch (a list of mutations, JSON-shaped or typed).

    Accepts :class:`Mutation` objects and dicts interchangeably; an empty
    patch is refused (a no-op write should not burn a document version).
    """
    if isinstance(raw, (str, bytes, Mapping)):
        raise MutationError("a patch must be a list of mutations")
    mutations: list[Mutation] = []
    for item in raw:
        mutations.append(item if isinstance(item, Mutation) else Mutation.from_dict(item))
    if not mutations:
        raise MutationError("a patch must contain at least one mutation")
    return mutations

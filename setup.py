"""Setup shim.

The sandboxed environment ships setuptools 65 without the ``wheel`` package,
so PEP 660 editable installs fail; this shim enables the legacy
``pip install -e . --no-use-pep517 --no-build-isolation`` path.  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

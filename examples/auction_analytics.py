"""Scenario: ad-hoc analytics over XMark-style auction data.

Shows the :mod:`repro.api` façade with per-schema instance caching: one
document opened once (``repro.open``), many exploratory path queries, each
answered on the compressed skeleton with exact tree-level counts decoded
from DAG selections, and a structured plan (with cached-instance
provenance) for the most selective query.

Run:  python examples/auction_analytics.py [scale]
"""

import sys

import repro
from repro.corpora import generate

EXPLORATION = [
    ("items listed in Africa", "/site/regions/africa/item"),
    ("items anywhere", "//item"),
    ("items paid by credit card", '//item[payment["Creditcard"]]'),
    (
        "US-located items in Africa",
        '//item[location["United States"] and parent::africa]',
    ),
    ("items with a mailbox thread", "//item[mailbox/mail]"),
    ("bidders in open auctions", "//open_auction/bidder"),
    ("auction items without bids", "//open_auction[not(bidder)]"),
    ("people with a street address", "//person[address/street]"),
]


def main(scale: int = 1200) -> None:
    corpus = generate("xmark", scale)
    print(f"Auction site: {corpus.megabytes:.1f} MB of XML\n")

    # repro.open caches the compressed instance per query schema (the
    # paper's measured setup re-parses instead; reparse_per_query=True
    # reproduces it).
    with repro.open(corpus.xml) as db:
        for label, xpath in EXPLORATION:
            result = db.execute(xpath)
            growth = result.result.decompression_ratio()
            print(f"{label:32s} {result.tree_count():>7,} matches "
                  f"({result.dag_count():>4} DAG vertices, "
                  f"{1000 * result.seconds:7.2f}ms, decompression x{growth:.2f})")

        query_text = '//item[location["United States"] and parent::africa]'
        plan = db.explain(query_text)
        print("\nQuery plan for the US/africa query (Figure 3 style):")
        print(plan.render())
        print(f"\ninstance provenance: {plan.instance}")
        print("(cached=True: the schema's one-scan load was paid by the first run)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1200)

"""Section 4's property workflow: distill + merge vs full re-parse.

The paper's engine, when a query needs a string property not yet in the
instance, "searches the representation on disk, distills a compressed
instance over schema {P}, and merges it" (common extensions, Lemma 2.7).
With our lossless decomposition the distillation replays events from the
skeleton+containers, skipping XML tokenisation entirely.  This bench
measures that saving against the alternative the paper's prototype actually
used (re-parse the document per query schema).
"""

from __future__ import annotations

import pytest

from repro.bench.tables import fmt_seconds, format_table
from repro.skeleton.distill import add_string_sets
from repro.skeleton.loader import load

from conftest import register_report

NEEDLES = {
    "dblp": ["Codd"],
    "omim": ["LETHAL"],
    "shakespeare": ["CLEOPATRA"],
}

_ROWS = []


@pytest.mark.parametrize("strategy", ["reparse", "distill+merge"])
@pytest.mark.parametrize("corpus", sorted(NEEDLES))
def test_add_string_property(benchmark, corpus_cache, corpus, strategy):
    xml = corpus_cache(corpus)
    needles = NEEDLES[corpus]
    base = load(xml, collect_containers=True)

    if strategy == "reparse":

        def run():
            return load(xml, strings=needles).instance

    else:

        def run():
            return add_string_sets(base.instance, base.containers, base.layout, needles)

    instance = benchmark(run)
    assert instance.has_set(f"#contains:{needles[0]}")
    _ROWS.append([corpus, strategy, fmt_seconds(benchmark.stats.stats.mean)])


def _report():
    if not _ROWS:
        return None
    by_corpus: dict[str, dict[str, str]] = {}
    for corpus, strategy, mean in _ROWS:
        by_corpus.setdefault(corpus, {})[strategy] = mean
    rows = [
        [corpus, means.get("reparse", "-"), means.get("distill+merge", "-")]
        for corpus, means in sorted(by_corpus.items())
    ]
    return format_table(
        ["corpus", "full re-parse", "distill + merge (Lemma 2.7)"],
        rows,
        title="Section 4 — adding a string property to a stored instance",
    )


register_report(_report)

#!/usr/bin/env python
"""End-to-end query throughput: bulk mask-plane engine vs the seed evaluator.

Runs the Figure 7 query mix (five queries per corpus, in the style of
Appendix A) over three corpora chosen for contrast — the maximally shared
binary tree, the run-length relational table, and XMark — and times, for
each query, repeated in-memory evaluation under

* the **seed** evaluator: a frozen copy of the engine as it stood before
  the bulk mask-plane work — per-vertex ``mask()``/``set_mask()`` loops,
  a fresh DFS for every traversal, per-query compilation, and a full
  product rebuild for every downward/sibling axis application; and
* the **current** engine: bulk set operations, cached traversal orders,
  split-avoiding axis fast paths, and a compiled-algebra cache.

Both sides evaluate on a fresh copy of the same loaded instance each round
(evaluation decompresses, so reuse would skew the comparison).  Results are
written to ``BENCH_query_throughput.json`` at the repository root so later
PRs have a perf trajectory; the run fails loudly when the geometric-mean
speedup drops below ``--min-speedup`` (default 2.0 full, 1.2 ``--quick``).

A second section times **cold pool fills**: every corpus is shredded into
a :class:`repro.storage.chunked.ChunkedStore` and a fresh store assembles
the full document via the mmap'd succinct skeleton (``skeleton.rskl``)
versus the legacy per-chunk text parse.  The geometric-mean ratio is the
report's ``cold_load_speedup`` and has its own floor
(``--min-cold-load-speedup``, default 10.0 full, 1.5 ``--quick``).

Usage::

    PYTHONPATH=src python benchmarks/bench_query_throughput.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from corpus_cache import cached_xml
from repro.corpora import binary_tree, relational
from repro.corpora.registry import CORPORA
from repro.engine.evaluator import CompressedEvaluator
from repro.engine.pipeline import load_for_query
from repro.errors import EvaluationError
from repro.model.instance import Instance, normalize_edges
from repro.model.schema import is_temp, temp_set
from repro.xpath.algebra import (
    AllNodes,
    AxisApply,
    ContextSet,
    Difference,
    Intersect,
    NamedSet,
    RootFilter,
    RootSet,
    Union,
)
from repro.xpath.compiler import compile_query

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

# ----------------------------------------------------------------------
# The frozen seed engine (commit 757a294), reconstructed on the public
# Instance API.  Traversals are recomputed on every call — the seed had no
# caching — so the baseline does not silently benefit from the new model
# layer.
# ----------------------------------------------------------------------


def _seed_preorder(instance: Instance) -> list[int]:
    root = instance.root
    order: list[int] = []
    visited = bytearray(instance.num_vertices)
    stack = [root]
    visited[root] = 1
    children = instance.children
    while stack:
        vertex = stack.pop()
        order.append(vertex)
        for child, _ in reversed(children(vertex)):
            if not visited[child]:
                visited[child] = 1
                stack.append(child)
    return order


def _seed_postorder(instance: Instance) -> list[int]:
    root = instance.root
    order: list[int] = []
    visited = bytearray(instance.num_vertices)
    stack: list[list[int]] = [[root, 0]]
    visited[root] = 1
    children = instance.children
    while stack:
        top = stack[-1]
        vertex, i = top
        edges = children(vertex)
        while i < len(edges) and visited[edges[i][0]]:
            i += 1
        top[1] = i + 1
        if i < len(edges):
            child = edges[i][0]
            visited[child] = 1
            stack.append([child, 0])
        else:
            order.append(vertex)
            stack.pop()
    return order


def _seed_apply_axis(instance: Instance, axis: str, source: str, target: str) -> Instance:
    if instance.has_set(target):
        raise EvaluationError(f"target set {target!r} already exists")
    source_bit = instance.bit_of(source)
    if not any(mask >> source_bit & 1 for mask in map(instance.mask, _seed_preorder(instance))):
        instance.ensure_set(target)
        return instance
    if axis == "self":
        bit = 1 << instance.ensure_set(target)
        for vertex in _seed_postorder(instance):
            if instance.mask(vertex) >> source_bit & 1:
                instance.set_mask(vertex, instance.mask(vertex) | bit)
        return instance
    if axis == "parent":
        return _seed_parent(instance, source_bit, target)
    if axis == "ancestor":
        return _seed_ancestor(instance, source_bit, target, or_self=False)
    if axis == "ancestor-or-self":
        return _seed_ancestor(instance, source_bit, target, or_self=True)
    if axis in ("child", "descendant", "descendant-or-self"):
        return _seed_downward(instance, axis, source_bit, target)
    if axis == "following-sibling":
        return _seed_sibling(instance, source_bit, target, following=True)
    if axis == "preceding-sibling":
        return _seed_sibling(instance, source_bit, target, following=False)
    if axis == "following":
        return _seed_composite(
            instance, source, target, ("ancestor-or-self", "following-sibling", "descendant-or-self")
        )
    if axis == "preceding":
        return _seed_composite(
            instance, source, target, ("ancestor-or-self", "preceding-sibling", "descendant-or-self")
        )
    raise EvaluationError(f"unknown axis {axis!r}")


def _seed_composite(instance: Instance, source: str, target: str, chain) -> Instance:
    current = source
    temps = []
    for index, axis in enumerate(chain):
        name = f"{target}~{index}" if index < len(chain) - 1 else target
        instance = _seed_apply_axis(instance, axis, current, name)
        if current != source:
            temps.append(current)
        current = name
    for name in temps:
        instance.drop_set(name)
    return instance


def _seed_parent(instance: Instance, source_bit: int, target: str) -> Instance:
    target_bit = 1 << instance.ensure_set(target)
    for vertex in _seed_preorder(instance):
        for child, _ in instance.children(vertex):
            if instance.mask(child) >> source_bit & 1:
                instance.set_mask(vertex, instance.mask(vertex) | target_bit)
                break
    return instance


def _seed_ancestor(instance: Instance, source_bit: int, target: str, or_self: bool) -> Instance:
    target_bit_index = instance.ensure_set(target)
    target_bit = 1 << target_bit_index
    for vertex in _seed_postorder(instance):
        mask = instance.mask(vertex)
        selected = bool(or_self and (mask >> source_bit & 1))
        if not selected:
            for child, _ in instance.children(vertex):
                child_mask = instance.mask(child)
                if child_mask >> source_bit & 1 or child_mask >> target_bit_index & 1:
                    selected = True
                    break
        if selected:
            instance.set_mask(vertex, mask | target_bit)
    return instance


def _seed_downward(instance: Instance, axis: str, source_bit: int, target: str) -> Instance:
    result = Instance(instance.schema)
    target_bit = 1 << result.ensure_set(target)
    descend = axis in ("descendant", "descendant-or-self")
    or_self = axis == "descendant-or-self"

    memo: dict[tuple[int, int], int] = {}
    stack: list[tuple[int, int, bool]] = [(instance.root, 0, False)]
    while stack:
        vertex, bit, expanded = stack.pop()
        state = (vertex, bit)
        if state in memo:
            continue
        in_source = instance.mask(vertex) >> source_bit & 1
        child_bit = 1 if (in_source or (descend and bit)) else 0
        if not expanded:
            stack.append((vertex, bit, True))
            for child, _ in instance.children(vertex):
                if (child, child_bit) not in memo:
                    stack.append((child, child_bit, False))
            continue
        edges = tuple(
            (memo[(child, child_bit)], count) for child, count in instance.children(vertex)
        )
        selected = bit or (or_self and in_source)
        mask = instance.mask(vertex) | (target_bit if selected else 0)
        memo[state] = result.new_vertex_masked(mask, edges)
    result.set_root(memo[(instance.root, 0)])
    return result


def _seed_sibling(instance: Instance, source_bit: int, target: str, following: bool) -> Instance:
    result = Instance(instance.schema)
    target_bit = 1 << result.ensure_set(target)
    child_states: dict[int, list[tuple[int, int, int]]] = {}

    def states_of(vertex: int) -> list[tuple[int, int, int]]:
        cached = child_states.get(vertex)
        if cached is not None:
            return cached
        runs: list[tuple[int, int, int]] = []
        edges = instance.children(vertex)
        flag = 0
        sequence = edges if following else tuple(reversed(edges))
        for child, count in sequence:
            in_source = instance.mask(child) >> source_bit & 1
            inner = 1 if (flag or in_source) else 0
            if count == 1:
                part = [(child, flag, 1)]
            elif following:
                part = [(child, flag, 1), (child, inner, count - 1)]
            else:
                part = [(child, inner, count - 1), (child, flag, 1)]
            if not following:
                part.reverse()
            runs.extend(part)
            flag = 1 if (flag or in_source) else 0
        if not following:
            runs.reverse()
        child_states[vertex] = runs
        return runs

    memo: dict[tuple[int, int], int] = {}
    stack: list[tuple[int, int, bool]] = [(instance.root, 0, False)]
    while stack:
        vertex, bit, expanded = stack.pop()
        state = (vertex, bit)
        if state in memo:
            continue
        runs = states_of(vertex)
        if not expanded:
            stack.append((vertex, bit, True))
            for child, child_bit, _ in runs:
                if (child, child_bit) not in memo:
                    stack.append((child, child_bit, False))
            continue
        edges = normalize_edges(
            (memo[(child, child_bit)], count) for child, child_bit, count in runs
        )
        mask = instance.mask(vertex) | (target_bit if bit else 0)
        memo[state] = result.new_vertex_masked(mask, edges)
    result.set_root(memo[(instance.root, 0)])
    return result


class SeedEvaluator:
    """The seed CompressedEvaluator: per-vertex loops, no caches anywhere."""

    def __init__(self, instance: Instance, context: str | None = None, copy: bool = True):
        self._instance = instance.copy() if copy else instance
        self._context = context
        self._counter = 0

    def evaluate(self, query: str):
        expr = compile_query(query) if isinstance(query, str) else query
        before = (
            len(_seed_preorder(self._instance)),
            sum(len(self._instance.children(v)) for v in _seed_preorder(self._instance)),
        )
        result_name = self._eval(expr)
        for name in list(self._instance.schema):
            if is_temp(name) and name != result_name:
                self._instance.drop_set(name)
        return (self._instance, result_name, before)

    def _fresh(self) -> str:
        self._counter += 1
        return temp_set(self._counter)

    def _eval(self, expr) -> str:
        instance = self._instance
        if isinstance(expr, NamedSet):
            if not instance.has_set(expr.name):
                raise EvaluationError(f"set {expr.name!r} is not in the instance schema")
            return expr.name
        if isinstance(expr, RootSet):
            name = self._fresh()
            instance.add_to_set(instance.root, name)
            return name
        if isinstance(expr, AllNodes):
            name = self._fresh()
            bit = 1 << instance.ensure_set(name)
            for vertex in _seed_preorder(instance):
                instance.set_mask(vertex, instance.mask(vertex) | bit)
            return name
        if isinstance(expr, ContextSet):
            if self._context is not None:
                return self._context
            name = self._fresh()
            instance.add_to_set(instance.root, name)
            return name
        if isinstance(expr, (Union, Intersect, Difference)):
            left = self._eval(expr.left)
            right = self._eval(expr.right)
            return self._combine(expr, left, right)
        if isinstance(expr, AxisApply):
            source = self._eval(expr.operand)
            target = self._fresh()
            self._instance = _seed_apply_axis(self._instance, expr.axis, source, target)
            return target
        if isinstance(expr, RootFilter):
            source = self._eval(expr.operand)
            instance = self._instance
            name = self._fresh()
            bit = 1 << instance.ensure_set(name)
            if instance.in_set(instance.root, source):
                for vertex in _seed_preorder(instance):
                    instance.set_mask(vertex, instance.mask(vertex) | bit)
            return name
        raise EvaluationError(f"cannot evaluate algebra node {expr!r}")

    def _combine(self, expr, left: str, right: str) -> str:
        instance = self._instance
        name = self._fresh()
        target_bit = 1 << instance.ensure_set(name)
        left_bit = instance.bit_of(left)
        right_bit = instance.bit_of(right)
        for vertex in _seed_preorder(instance):
            mask = instance.mask(vertex)
            a = mask >> left_bit & 1
            b = mask >> right_bit & 1
            if isinstance(expr, Union):
                value = a | b
            elif isinstance(expr, Intersect):
                value = a & b
            else:
                value = a & ~b & 1
            if value:
                instance.set_mask(vertex, mask | target_bit)
        return name


# ----------------------------------------------------------------------
# The query mix
# ----------------------------------------------------------------------

BINARY_TREE_QUERIES = {
    "Q1": "/a/b/a/b",
    "Q2": "//b[a]",
    "Q3": "/descendant::a[b/b]",
    "Q4": "//a/following-sibling::b",
    "Q5": "//b/preceding-sibling::a",
}

RELATIONAL_QUERIES = {
    "Q1": "/table/row/col0",
    "Q2": '//row[col1["r1c1"]]/col2',
    "Q3": '//col3/following-sibling::col5',
    "Q4": '//row[col0["r0c0"]]',
    "Q5": '//col1/preceding-sibling::col0',
}


def corpus_xml(name: str, quick: bool) -> str:
    if name == "binary-tree":
        depth = 8 if quick else 12
        return cached_xml(
            "binary-tree", lambda: binary_tree.generate_xml(depth=depth).xml, depth=depth
        )
    if name == "relational":
        rows, cols = (60, 8) if quick else (400, 12)
        return cached_xml(
            "relational",
            lambda: relational.generate_xml(rows, cols, distinct_texts=True).xml,
            rows=rows,
            cols=cols,
            distinct=True,
        )
    if name == "xmark":
        info = CORPORA["xmark"]
        scale = max(1, int(info.default_scale * (0.1 if quick else 0.5)))
        return cached_xml("xmark", lambda: info.generate(scale, 0).xml, scale=scale, seed=0)
    raise ValueError(name)


def corpus_queries(name: str) -> dict[str, str]:
    if name == "binary-tree":
        return BINARY_TREE_QUERIES
    if name == "relational":
        return RELATIONAL_QUERIES
    from repro.bench.queries import queries_for

    return queries_for(name)


CORPUS_NAMES = ("binary-tree", "relational", "xmark")


# ----------------------------------------------------------------------
# Timing harness
# ----------------------------------------------------------------------


def best_time(run, repeats: int, loops: int) -> float:
    """Best per-call seconds over ``repeats`` batches of ``loops`` calls."""
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(loops):
            run()
        elapsed = (time.perf_counter() - started) / loops
        if elapsed < best:
            best = elapsed
    return best


def calibrate_loops(run, target_seconds: float) -> int:
    once = time.perf_counter()
    run()
    once = time.perf_counter() - once
    if once <= 0:
        return 10
    return max(1, min(50, int(target_seconds / once)))


def measure(corpus: str, quick: bool) -> list[dict]:
    xml = corpus_xml(corpus, quick)
    rows = []
    repeats = 2 if quick else 3
    target = 0.05 if quick else 0.25
    for query_id, query_text in corpus_queries(corpus).items():
        instance = load_for_query(xml, query_text).instance
        expr = compile_query(query_text)  # the Engine's compiled-algebra cache

        def run_seed():
            SeedEvaluator(instance, copy=True).evaluate(query_text)

        def run_new():
            CompressedEvaluator(instance, copy=True).evaluate(expr)

        # Correctness guard: both engines decode to the same selection size.
        seed_instance, seed_name, _ = SeedEvaluator(instance, copy=True).evaluate(query_text)
        new_result = CompressedEvaluator(instance, copy=True).evaluate(expr)
        seed_members = len(seed_instance.members(seed_name) & set(seed_instance.preorder()))
        if seed_members != new_result.dag_count():
            raise AssertionError(
                f"{corpus} {query_id}: seed selected {seed_members} DAG vertices, "
                f"new engine {new_result.dag_count()}"
            )

        loops = calibrate_loops(run_seed, target)
        seed_seconds = best_time(run_seed, repeats, loops)
        new_loops = max(loops, calibrate_loops(run_new, target))
        new_seconds = best_time(run_new, repeats, new_loops)
        rows.append(
            {
                "corpus": corpus,
                "query_id": query_id,
                "query": query_text,
                "instance_vertices": instance.num_vertices,
                "instance_edge_entries": instance.num_edge_entries,
                "selected_dag": new_result.dag_count(),
                "seed_seconds": seed_seconds,
                "new_seconds": new_seconds,
                "speedup": seed_seconds / new_seconds if new_seconds else math.inf,
            }
        )
        print(
            f"  {corpus:12s} {query_id}  seed {seed_seconds * 1000:9.3f} ms   "
            f"new {new_seconds * 1000:9.3f} ms   speedup {rows[-1]['speedup']:6.2f}x"
        )
    return rows


#: Corpora timed by the cold-load section, with full/quick generator scales.
#: Pool fills in production load documents whose compressed skeletons hold
#: thousands of vertices, so the section measures corpora of that shape; the
#: query-mix corpora compress to a few dozen vertices, where both cold paths
#: collapse into fixed per-file costs (two opens, one manifest parse) and the
#: ratio says nothing about the assembly work the skeleton format removes.
COLD_LOAD_CORPORA = (
    ("treebank", 400, 80),
    ("shakespeare", 200, 50),
    ("swissprot", 300, 75),
    ("xmark", 300, 30),
)


def measure_cold_load(quick: bool) -> dict:
    """Skeleton-vs-chunks cold assembly, per corpus (the pool-fill path)."""
    import shutil
    import tempfile

    from repro.skeleton.loader import load_instance
    from repro.storage.chunked import ChunkedStore

    rows = []
    repeats = 2 if quick else 3
    target = 0.05 if quick else 0.25
    tmp = tempfile.mkdtemp(prefix="bench-cold-load-")
    try:
        for corpus, full_scale, quick_scale in COLD_LOAD_CORPORA:
            directory = os.path.join(tmp, corpus)
            scale = quick_scale if quick else full_scale
            xml = CORPORA[corpus].generate(scale, 0).xml
            ChunkedStore.save(load_instance(xml), directory)

            def load_skeleton():
                ChunkedStore(directory).assemble()

            def load_chunks():
                fresh = ChunkedStore(directory)
                fresh.skeleton_file = None  # force the legacy chunk path
                fresh.assemble()

            # Correctness guard: both cold paths serve the identical DAG.
            probe = ChunkedStore(directory)
            fast = probe.assemble()
            info = dict(probe.last_load_info)
            assert info["format"] == "skeleton", info
            probe.skeleton_file = None
            legacy = probe.assemble()
            if (fast.num_vertices, fast.root) != (legacy.num_vertices, legacy.root):
                raise AssertionError(f"{corpus}: skeleton and chunk loads disagree")

            skeleton_seconds = best_time(
                load_skeleton, repeats, calibrate_loops(load_skeleton, target)
            )
            chunk_seconds = best_time(
                load_chunks, repeats, calibrate_loops(load_chunks, target)
            )
            rows.append(
                {
                    "corpus": corpus,
                    "vertices": fast.num_vertices,
                    "bytes_mapped": info["bytes_mapped"],
                    "mmap": info["mmap"],
                    "chunk_seconds": chunk_seconds,
                    "skeleton_seconds": skeleton_seconds,
                    "speedup": chunk_seconds / skeleton_seconds
                    if skeleton_seconds
                    else math.inf,
                }
            )
            print(
                f"  {corpus:12s} cold load  chunks {chunk_seconds * 1000:9.3f} ms   "
                f"skeleton {skeleton_seconds * 1000:9.3f} ms   "
                f"speedup {rows[-1]['speedup']:6.2f}x"
            )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {"rows": rows, "geomean_speedup": geomean(row["speedup"] for row in rows)}


def geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values)) if values else 0.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small corpora, CI smoke mode")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail when geometric-mean speedup is below this (default: 2.0, or 1.2 with --quick)",
    )
    parser.add_argument(
        "--min-cold-load-speedup",
        type=float,
        default=None,
        help="fail when the skeleton-vs-chunks cold-load geomean is below "
        "this (default: 10.0, or 1.5 with --quick)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_query_throughput.json"),
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    min_speedup = args.min_speedup if args.min_speedup is not None else (1.2 if args.quick else 2.0)
    min_cold_load = (
        args.min_cold_load_speedup
        if args.min_cold_load_speedup is not None
        else (1.5 if args.quick else 10.0)
    )

    print(f"query throughput: new engine vs seed evaluator ({'quick' if args.quick else 'full'})")
    rows: list[dict] = []
    for corpus in CORPUS_NAMES:
        rows.extend(measure(corpus, args.quick))

    print("cold pool fill: mmap skeleton vs legacy chunk assembly")
    cold_load = measure_cold_load(args.quick)

    overall = geomean(row["speedup"] for row in rows)
    per_corpus = {
        corpus: geomean(row["speedup"] for row in rows if row["corpus"] == corpus)
        for corpus in CORPUS_NAMES
    }
    report = {
        "benchmark": "query_throughput",
        "mode": "quick" if args.quick else "full",
        "baseline": "seed evaluator (commit 757a294): per-vertex loops, uncached traversals",
        "corpora": CORPUS_NAMES,
        "rows": rows,
        "geomean_speedup": overall,
        "geomean_speedup_per_corpus": per_corpus,
        "min_speedup_required": min_speedup,
        "cold_load": cold_load,
        "cold_load_speedup": cold_load["geomean_speedup"],
        "min_cold_load_speedup_required": min_cold_load,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print("\nper-corpus geomean: " + "  ".join(f"{c}={s:.2f}x" for c, s in per_corpus.items()))
    print(f"overall geomean speedup: {overall:.2f}x  (required >= {min_speedup:.2f}x)")
    print(
        f"cold-load geomean speedup: {cold_load['geomean_speedup']:.2f}x  "
        f"(required >= {min_cold_load:.2f}x)"
    )
    print(f"wrote {args.output}")
    failed = False
    if overall < min_speedup:
        print("FAIL: speedup below the required floor", file=sys.stderr)
        failed = True
    if cold_load["geomean_speedup"] < min_cold_load:
        print("FAIL: cold-load speedup below the required floor", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

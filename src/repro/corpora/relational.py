"""Parametric XML-ised relational tables (section 1's complexity claim).

An R-row, C-column table has a skeleton of size O(C*R); sharing compresses
it to O(C+R) and multiplicity edges to O(C + log R) — with our run-length
representation the row fan-out is literally *one* edge entry, so the
instance size is O(C).  ``benchmarks/bench_relational_scaling.py``
regenerates the claim as measured numbers.
"""

from __future__ import annotations

from repro.corpora.base import GeneratedCorpus, XMLBuilder, check_scale
from repro.compress.builder import DagBuilder
from repro.model.instance import Instance


def generate_xml(rows: int, cols: int, distinct_texts: bool = False, seed: int = 0) -> GeneratedCorpus:
    """An R x C table as XML text.

    ``distinct_texts`` fills cells with unique strings; irrelevant to the
    skeleton but useful when exercising string constraints.
    """
    check_scale(rows)
    check_scale(cols)
    builder = XMLBuilder()
    builder.open("table").newline()
    for row in range(rows):
        builder.open("row")
        for col in range(cols):
            builder.leaf(f"col{col}", f"r{row}c{col}" if distinct_texts else "x")
        builder.close()
        if row % 100 == 99:
            builder.newline()
    builder.close()
    return GeneratedCorpus(name="relational", xml=builder.result(), scale=rows * cols, seed=seed)


def direct_instance(rows: int, cols: int) -> Instance:
    """The compressed instance of an R x C table, built without XML.

    Demonstrates the O(C) representation: C distinct column leaves, one
    shared row vertex, and a single multiplicity-R edge from the table to
    the row — C+2 vertices and C+1 edge entries, independent of R.
    """
    check_scale(rows)
    check_scale(cols)
    builder = DagBuilder()
    builder.start_node()  # table
    builder.start_node()  # first row
    for col in range(cols):
        builder.leaf((f"col{col}",))
    builder.end_node(("row",))
    builder.repeat_last(rows - 1)
    builder.end_node(("table",))
    return builder.finish()

"""Shredded secondary storage for compressed instances (section 6).

A loader-produced instance (virtual document root above one root element)
is *shredded* into chunks: one serialized sub-DAG per **distinct** top-level
subtree of the root element.  Because top-level subtrees of regular
documents repeat heavily, distinct chunks are few (one per record shape for
DBLP-like data) and the manifest's run-length child list carries the
repetition — the same trick as multiplicity edges, one level up.

Queries load only the chunks they can observe
(:func:`repro.storage.prune.prunable_top_tags`); the assembled partial
instance behaves exactly like the full one for such queries, which the test
suite verifies against unshredded evaluation.

Layout on disk::

    <dir>/manifest.json        schema, masks, ordered (chunk, count) list
    <dir>/chunk-<n>.dag        one REPRO-DAG file per distinct subtree
    <dir>/skeleton.rskl        succinct whole-document image (format 2 only)

Format 2 manifests additionally record a **succinct skeleton** — the fully
assembled document encoded once at shred time into the RSKL layout of
:mod:`repro.skeleton.layout`.  Whole-document loads (``assemble(None)``,
the instance pool's cold path) then mmap-and-decode that one file instead
of deserialising every chunk; partial (pruned) loads and format-1 stores
keep using the chunk files, so old catalogs read back byte-identically
with no migration.  A skeleton that fails its digest raises
:class:`~repro.errors.IntegrityError` exactly like a corrupt chunk; a
*missing* skeleton silently falls back to chunks (it is a cache of the
chunks' content, not data).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading

from repro.errors import IntegrityError, ReproError
from repro.model.instance import Instance, normalize_edges
from repro.model.serialize import load_file as load_dag, save_file as save_dag
from repro.skeleton.layout import (
    SkeletonUnsupported,
    read_skeleton,
    write_skeleton,
)
from repro.storage.prune import prunable_top_tags

_MANIFEST = "manifest.json"
_SKELETON_FILE = "skeleton.rskl"
_FORMAT_V1 = "repro-chunks-1"
_FORMAT_V2 = "repro-chunks-2"


def _file_checksum(path: str) -> str:
    """sha256 of a chunk file, streamed (chunks can be large)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def extract_subdag(instance: Instance, vertex: int) -> Instance:
    """The sub-instance reachable from ``vertex`` (same schema, new ids)."""
    sub = Instance(instance.schema)
    row_masks = instance.row_masks()
    built: dict[int, int] = {}
    stack: list[tuple[int, bool]] = [(vertex, False)]
    while stack:
        current, expanded = stack.pop()
        if current in built:
            continue
        if not expanded:
            stack.append((current, True))
            stack.extend(
                (child, False)
                for child, _ in instance.children(current)
                if child not in built
            )
            continue
        edges = tuple((built[child], count) for child, count in instance.children(current))
        built[current] = sub.new_vertex_masked(row_masks[current], edges)
    sub.set_root(built[vertex])
    return sub


class ChunkedStore:
    """A shredded instance on disk; open lazily, load partially."""

    def __init__(self, directory: str):
        self.directory = directory
        with open(os.path.join(directory, _MANIFEST), "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format") not in (_FORMAT_V1, _FORMAT_V2):
            raise ReproError(f"not a chunk store: {directory}")
        #: Relative name of the succinct whole-document skeleton, or None
        #: for format-1 (legacy) stores and stores the encoder skipped.
        self.skeleton_file: str | None = manifest.get("skeleton")
        #: How the most recent :meth:`assemble` was served (stats surface).
        self.last_load_info: dict | None = None
        self.schema: list[str] = manifest["schema"]
        self._doc_mask: int = manifest["doc_mask"]
        self._root_mask: int = manifest["root_mask"]
        #: Ordered top-level children: (chunk id, multiplicity).
        self._top: list[tuple[int, int]] = [tuple(e) for e in manifest["top"]]
        #: Tags (plain set names) of each chunk's top vertex, for pruning.
        self._chunk_tags: list[list[str]] = manifest["chunk_tags"]
        #: sha256 per chunk file, recorded at shred time.  Absent from
        #: stores shredded before checksums existed — those load unverified
        #: (``verify()`` reports them as unverifiable, not corrupt).
        self.checksums: list[str] | None = manifest.get("checksums")
        self._cache: dict[int, Instance] = {}
        # Serialises cache fills so concurrent readers (the query service's
        # warm-start path) load each chunk from disk exactly once.
        self._cache_lock = threading.Lock()

    # -- construction ---------------------------------------------------

    @staticmethod
    def save(instance: Instance, directory: str) -> "ChunkedStore":
        """Shred ``instance`` (a loader-produced document) into ``directory``.

        Writes the chunk files and manifest first, then encodes the succinct
        skeleton *from the assembled chunks* — so the skeleton is guaranteed
        to decode byte-identically to a legacy chunk assembly (same vertex
        numbering, same schema order).  An instance the RSKL layout cannot
        hold simply omits the skeleton; loads fall back to chunks.
        """
        os.makedirs(directory, exist_ok=True)
        document = instance.root
        root_children = instance.children(document)
        if len(root_children) != 1 or root_children[0][1] != 1:
            raise ReproError("shredding expects a document instance (one root element)")
        root_element = root_children[0][0]

        chunk_ids: dict[int, int] = {}
        chunk_tags: list[list[str]] = []
        checksums: list[str] = []
        top: list[tuple[int, int]] = []
        for child, count in instance.children(root_element):
            chunk = chunk_ids.get(child)
            if chunk is None:
                chunk = len(chunk_ids)
                chunk_ids[child] = chunk
                chunk_path = os.path.join(directory, f"chunk-{chunk}.dag")
                save_dag(extract_subdag(instance, child), chunk_path)
                checksums.append(_file_checksum(chunk_path))
                chunk_tags.append(
                    [name for name in instance.sets_at(child) if not name.startswith("#")]
                )
            top.append((chunk, count))

        manifest = {
            "format": _FORMAT_V2,
            "schema": list(instance.schema),
            "doc_mask": instance.mask(document),
            "root_mask": instance.mask(root_element),
            "top": top,
            "chunk_tags": chunk_tags,
            "checksums": checksums,
        }
        manifest_path = os.path.join(directory, _MANIFEST)
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)

        store = ChunkedStore(directory)
        try:
            write_skeleton(
                os.path.join(directory, _SKELETON_FILE), store.assemble()
            )
        except SkeletonUnsupported:
            return store
        manifest["skeleton"] = _SKELETON_FILE
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        return ChunkedStore(directory)

    # -- loading ---------------------------------------------------------

    @property
    def num_chunks(self) -> int:
        return len(self._chunk_tags)

    def chunk(self, chunk_id: int) -> Instance:
        """Load (and cache) one chunk's sub-instance, verifying its checksum.

        Thread-safe; the cached instance is shared between callers and must
        be treated as read-only (:meth:`assemble` only reads it).  Its
        traversal caches are warmed under the lock, so concurrent readers
        never race on the lazy memoisation either.  A chunk whose bytes no
        longer hash to the manifest's shred-time checksum (torn write, bit
        rot, truncation) raises :class:`~repro.errors.IntegrityError`
        *before* deserialisation — corrupt data is never decoded, cached,
        or served.
        """
        cached = self._cache.get(chunk_id)
        if cached is None:
            with self._cache_lock:
                cached = self._cache.get(chunk_id)
                if cached is None:
                    from repro.server.resilience import FAULTS

                    path = os.path.join(self.directory, f"chunk-{chunk_id}.dag")
                    FAULTS.fire("catalog.chunk", path=path, chunk_id=chunk_id)
                    self._verify_chunk(chunk_id, path)
                    cached = load_dag(path)
                    cached.postorder()  # pre-warm: later readers only read
                    cached.preorder()
                    self._cache[chunk_id] = cached
        return cached

    def _verify_chunk(self, chunk_id: int, path: str) -> None:
        if self.checksums is None or chunk_id >= len(self.checksums):
            return  # pre-checksum store: load unverified, as before
        try:
            actual = _file_checksum(path)
        except FileNotFoundError:
            raise IntegrityError(
                f"chunk {chunk_id} of {self.directory} is missing"
            ) from None
        if actual != self.checksums[chunk_id]:
            raise IntegrityError(
                f"chunk {chunk_id} of {self.directory} failed its checksum "
                f"(stored {self.checksums[chunk_id][:12]}..., actual {actual[:12]}...)"
            )

    def verify(self) -> dict:
        """Check every chunk file (and the skeleton) against its checksum.

        Returns ``{"chunks": N, "corrupt": [ids], "unverifiable": bool}``
        without decoding anything — pure byte hashing, so verification of a
        quarantine candidate never crashes on malformed data.  A skeleton
        failing its embedded digest appends ``"skeleton"`` to the corrupt
        list (a *missing* skeleton is not corruption — loads fall back to
        the chunks it was encoded from).
        """
        corrupt: list = []
        if self.checksums is None:
            return {"chunks": self.num_chunks, "corrupt": corrupt, "unverifiable": True}
        for chunk_id in range(self.num_chunks):
            try:
                self._verify_chunk(
                    chunk_id, os.path.join(self.directory, f"chunk-{chunk_id}.dag")
                )
            except IntegrityError:
                corrupt.append(chunk_id)
        if self.skeleton_file is not None:
            try:
                read_skeleton(os.path.join(self.directory, self.skeleton_file))
            except FileNotFoundError:
                pass
            except (IntegrityError, OSError):
                corrupt.append("skeleton")
        return {"chunks": self.num_chunks, "corrupt": corrupt, "unverifiable": False}

    def chunks_with_tags(self, tags: set[str] | None) -> list[int]:
        """Chunk ids whose top vertex carries one of ``tags`` (None = all)."""
        if tags is None:
            return list(range(self.num_chunks))
        return [
            chunk_id
            for chunk_id, chunk_tag_list in enumerate(self._chunk_tags)
            if set(chunk_tag_list) & tags
        ]

    def assemble(self, chunk_ids: list[int] | None = None) -> Instance:
        """Rebuild an instance from selected chunks (None = all, lossless).

        The result is a document instance with the same schema; omitted
        top-level subtrees are absent (the partial-residency model of
        section 6: queries that cannot observe them run unchanged).

        Whole-document assemblies of format-2 stores are served from the
        succinct skeleton when one exists — mmap, digest check, column
        adoption — producing the identical instance without touching the
        chunk files.  :attr:`last_load_info` records which path served the
        call (and, for skeleton loads, how many bytes were mapped).
        """
        if chunk_ids is None and self.skeleton_file is not None:
            instance = self._assemble_from_skeleton()
            if instance is not None:
                return instance
        selected = set(chunk_ids if chunk_ids is not None else range(self.num_chunks))
        combined = Instance(self.schema)
        roots: dict[int, int] = {}
        for chunk_id in sorted(selected):
            chunk = self.chunk(chunk_id)
            row_masks = chunk.row_masks()
            offset_map: dict[int, int] = {}
            for vertex in chunk.postorder():
                edges = tuple(
                    (offset_map[child], count) for child, count in chunk.children(vertex)
                )
                offset_map[vertex] = combined.new_vertex_masked(row_masks[vertex], edges)
            roots[chunk_id] = offset_map[chunk.root]
        top_edges = normalize_edges(
            (roots[chunk_id], count)
            for chunk_id, count in self._top
            if chunk_id in selected
        )
        root_element = combined.new_vertex_masked(self._root_mask, top_edges)
        document = combined.new_vertex_masked(self._doc_mask, ((root_element, 1),))
        combined.set_root(document)
        self.last_load_info = {
            "format": "chunks",
            "chunks_loaded": len(selected),
            "mmap": False,
            "bytes_mapped": 0,
        }
        return combined

    def _assemble_from_skeleton(self) -> Instance | None:
        """The mmap fast path; None means "fall back to chunks" (no file).

        A skeleton whose bytes fail their digest raises
        :class:`IntegrityError` — same quarantine flow as a corrupt chunk.
        """
        from repro.server.resilience import FAULTS

        path = os.path.join(self.directory, self.skeleton_file)
        FAULTS.fire("catalog.skeleton", path=path)
        try:
            instance, info = read_skeleton(path)
        except FileNotFoundError:
            return None  # the skeleton is a cache; chunks are the data
        self.last_load_info = info.as_dict()
        return instance

    def instance_for_query(self, query: str) -> tuple[Instance, int]:
        """Assemble just enough chunks to answer ``query``.

        Returns ``(instance, chunks_loaded)``.  Correct for every query:
        the pruning analysis falls back to loading everything whenever the
        query could observe other chunks.
        """
        tags = prunable_top_tags(query)
        chunk_ids = self.chunks_with_tags(tags)
        return self.assemble(chunk_ids), len(chunk_ids)

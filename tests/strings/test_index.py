"""Tests for the trigram substring index over containers."""

from hypothesis import given, strategies as st

from repro.strings.containers import ContainerStore
from repro.strings.index import TrigramIndex, trigrams


def store_of(*chunks):
    store = ContainerStore()
    for chunk in chunks:
        store.add("c", chunk)
    return store


class TestTrigrams:
    def test_basic(self):
        assert trigrams("abcd") == {"abc", "bcd"}

    def test_short_strings_have_none(self):
        assert trigrams("ab") == set()
        assert trigrams("") == set()


class TestTrigramIndex:
    def test_lookup_finds_containing_chunks(self):
        index = TrigramIndex(store_of("hello world", "goodbye", "world peace"))
        assert index.lookup("world") == [0, 2]

    def test_lookup_verifies_candidates(self):
        # 'abc' and 'cab' share trigrams with 'abcab' but only real
        # occurrences survive verification.
        index = TrigramIndex(store_of("abcxx", "xxcab", "no match"))
        assert index.lookup("abc") == [0]
        assert index.lookup("cab") == [1]

    def test_short_needle_falls_back_to_scan(self):
        index = TrigramIndex(store_of("xy", "ab", "ya"))
        assert index.lookup("y") == [0, 2]

    def test_missing_needle(self):
        index = TrigramIndex(store_of("aaa", "bbb"))
        assert index.lookup("ccc") == []
        assert not index.contains_anywhere("ccc")

    def test_candidates_superset_of_lookup(self):
        index = TrigramIndex(store_of("abcdef", "defabc", "fedcba"))
        for needle in ("abc", "def", "cba", "fed"):
            assert set(index.lookup(needle)) <= index.candidates(needle)

    def test_stats(self):
        index = TrigramIndex(store_of("abc", "abc", "xyz"))
        assert index.num_chunks == 3
        assert index.num_trigrams == 2


@given(
    st.lists(st.text(alphabet="abc", max_size=10), min_size=1, max_size=8),
    st.text(alphabet="abc", min_size=1, max_size=5),
)
def test_lookup_matches_bruteforce(chunks, needle):
    store = ContainerStore()
    for chunk in chunks:
        store.add("c", chunk)
    index = TrigramIndex(store)
    expected = [i for i, chunk in enumerate(chunks) if needle in chunk]
    assert index.lookup(needle) == expected

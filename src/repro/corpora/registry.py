"""Registry of the benchmark corpora with the paper's Figure 6 reference data.

``paper_ratio_minus`` / ``paper_ratio_plus`` are |E^M|/|E^T| with tags
ignored / included, exactly as printed in Figure 6; ``paper_tree_nodes`` is
|V^T|.  The benchmarks print these next to our measured values.
"""

from __future__ import annotations

from repro.corpora import baseball, dblp, omim, shakespeare, swissprot, tpcd, treebank, xmark
from repro.corpora.base import CorpusInfo, GeneratedCorpus
from repro.errors import CorpusError

CORPORA: dict[str, CorpusInfo] = {
    info.name: info
    for info in (
        CorpusInfo(
            name="swissprot",
            description="Protein database: rich, repetitive records",
            generate=swissprot.generate,
            default_scale=900,
            paper_size_mb=457.4,
            paper_tree_nodes=10_903_569,
            paper_ratio_minus=0.073,
            paper_ratio_plus=0.101,
        ),
        CorpusInfo(
            name="dblp",
            description="Bibliography: a tiny pool of record shapes",
            generate=dblp.generate,
            default_scale=3000,
            paper_size_mb=103.6,
            paper_tree_nodes=2_611_932,
            paper_ratio_minus=0.066,
            paper_ratio_plus=0.085,
        ),
        CorpusInfo(
            name="treebank",
            description="Parse trees: deep, irregular (compression outlier)",
            generate=treebank.generate,
            default_scale=700,
            paper_size_mb=55.8,
            paper_tree_nodes=2_447_728,
            paper_ratio_minus=0.349,
            paper_ratio_plus=0.532,
        ),
        CorpusInfo(
            name="omim",
            description="Genetic disorder records: flat and regular",
            generate=omim.generate,
            default_scale=800,
            paper_size_mb=28.3,
            paper_tree_nodes=206_454,
            paper_ratio_minus=0.058,
            paper_ratio_plus=0.070,
        ),
        CorpusInfo(
            name="xmark",
            description="Auction site benchmark data",
            generate=xmark.generate,
            default_scale=600,
            paper_size_mb=9.6,
            paper_tree_nodes=190_488,
            paper_ratio_minus=0.062,
            paper_ratio_plus=0.144,
        ),
        CorpusInfo(
            name="shakespeare",
            description="Collected plays: shallow, moderately regular",
            generate=shakespeare.generate,
            default_scale=400,
            paper_size_mb=7.9,
            paper_tree_nodes=179_691,
            paper_ratio_minus=0.161,
            paper_ratio_plus=0.178,
        ),
        CorpusInfo(
            name="baseball",
            description="1998 MLB statistics: two rigid record shapes",
            generate=baseball.generate,
            default_scale=100,
            paper_size_mb=0.672,
            paper_tree_nodes=28_307,
            paper_ratio_minus=0.003,
            paper_ratio_plus=0.026,
        ),
        CorpusInfo(
            name="tpcd",
            description="XML-ised relational rows (compression only)",
            generate=tpcd.generate,
            default_scale=1000,
            paper_size_mb=0.288,
            paper_tree_nodes=11_765,
            paper_ratio_minus=0.014,
            paper_ratio_plus=0.022,
        ),
    )
}

#: The corpora with Q1-Q5 query experiments in Figure 7 (TPC-D excluded,
#: footnote 10).
QUERY_CORPORA = (
    "swissprot",
    "dblp",
    "treebank",
    "omim",
    "xmark",
    "shakespeare",
    "baseball",
)


def get_corpus(name: str) -> CorpusInfo:
    try:
        return CORPORA[name]
    except KeyError:
        raise CorpusError(
            f"unknown corpus {name!r}; available: {', '.join(sorted(CORPORA))}"
        ) from None


def generate(name: str, scale: int | None = None, seed: int = 0) -> GeneratedCorpus:
    """Generate a corpus by name at ``scale`` (default per registry)."""
    info = get_corpus(name)
    return info.generate(scale if scale is not None else info.default_scale, seed)

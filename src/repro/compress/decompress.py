"""Decompression: materialising the unique equivalent tree ``T(I)`` (Prop 2.2).

The tree can be exponentially (with multiplicities: doubly exponentially)
larger than the instance, so materialisation is guarded by a node limit and
the common size queries (:func:`repro.model.paths.tree_size`) are computed
without building anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecompressionLimitError
from repro.model.instance import Instance
from repro.model.paths import tree_size

#: Default guard for tree materialisation.
DEFAULT_LIMIT = 2_000_000


@dataclass(frozen=True)
class Decompression:
    """A materialised tree plus its correspondence to the source DAG.

    ``origin[t]`` is the DAG vertex that tree vertex ``t`` was unfolded from
    (the bisimulation of Proposition 2.4 maps each tree node to its DAG
    vertex).  ``path[t]`` is the 1-based edge path of ``t`` — the identity of
    the tree node in the sense of section 2.1.
    """

    tree: Instance
    origin: list[int]

    def paths(self) -> list[tuple[int, ...]]:
        """Edge path of every tree vertex (index = tree vertex id)."""
        out: list[tuple[int, ...]] = [()] * self.tree.num_vertices
        stack: list[int] = [self.tree.root]
        while stack:
            vertex = stack.pop()
            base = out[vertex]
            position = 0
            for child, count in self.tree.children(vertex):
                position += count  # trees have count == 1; keep general
                out[child] = base + (position,)
                stack.append(child)
        return out

    def vertices_from(self, dag_vertex: int) -> list[int]:
        """All tree vertices unfolded from a given DAG vertex."""
        return [t for t, origin in enumerate(self.origin) if origin == dag_vertex]


def decompress(instance: Instance, limit: int = DEFAULT_LIMIT) -> Decompression:
    """Materialise ``T(I)``.

    Tree vertices are created parent-first, children in document order, so
    sibling ids are consecutive.  Raises :class:`DecompressionLimitError` if
    the tree would exceed ``limit`` nodes (checked *before* allocating).
    """
    total = tree_size(instance)
    if total > limit:
        raise DecompressionLimitError(
            f"T(I) has {total} nodes, exceeding the limit of {limit}"
        )
    tree = Instance(instance.schema)
    origin: list[int] = []
    row_masks = instance.row_masks()

    def make(dag_vertex: int) -> int:
        origin.append(dag_vertex)
        return tree.new_vertex_masked(row_masks[dag_vertex])

    root = make(instance.root)
    stack: list[tuple[int, int]] = [(root, instance.root)]
    while stack:
        tree_vertex, dag_vertex = stack.pop()
        edges = []
        pairs = []
        for dag_child in instance.expanded_children(dag_vertex):
            tree_child = make(dag_child)
            edges.append((tree_child, 1))
            pairs.append((tree_child, dag_child))
        tree.set_children(tree_vertex, edges)
        stack.extend(reversed(pairs))
    tree.set_root(root)
    return Decompression(tree=tree, origin=origin)


def document_order(tree: Instance) -> list[int]:
    """Tree vertices in document order (preorder); the inverse of ranking.

    Returns a fresh list the caller may mutate (``Instance.preorder`` itself
    returns a cached, read-only order).
    """
    return list(tree.preorder())

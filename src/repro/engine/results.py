"""Decoding query results from compressed instances (Figure 7 columns 5-8).

A query result is a named selection on a (possibly partially decompressed)
instance.  A selected DAG vertex represents all tree nodes that unfold from
it, so the result offers both counts: selected DAG vertices (column 7) and
the tree nodes they stand for (column 8, via path counting), plus bounded
materialisation of the actual tree nodes as edge paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.model.instance import Instance
from repro.model.paths import iter_edge_paths, tree_node_counts


@dataclass
class QueryResult:
    """A selection ``set_name`` on the evaluation's final ``instance``."""

    instance: Instance
    set_name: str
    #: Sizes of the instance before evaluation (vertices, edge entries).
    before: tuple[int, int] = (0, 0)
    #: Wall-clock seconds spent in evaluation (set by the evaluator).
    seconds: float = 0.0

    def vertices(self) -> set[int]:
        """The selected DAG vertices."""
        return self.instance.members(self.set_name)

    def dag_count(self) -> int:
        """Figure 7 column (7): #nodes selected in the compressed instance."""
        return len(self.vertices() & set(self.instance.preorder()))

    def tree_count(self) -> int:
        """Figure 7 column (8): #tree nodes the selection represents."""
        counts = tree_node_counts(self.instance)
        bit = self.instance.bit_of(self.set_name)
        return sum(
            counts.get(v, 0)
            for v in range(self.instance.num_vertices)
            if self.instance.mask(v) >> bit & 1
        )

    @property
    def after(self) -> tuple[int, int]:
        """Instance size after evaluation (vertices, edge entries)."""
        reachable = self.instance.preorder()
        entries = sum(len(self.instance.children(v)) for v in reachable)
        return (len(reachable), entries)

    def is_empty(self) -> bool:
        return self.dag_count() == 0

    def tree_paths(self, limit: int = 1_000_000) -> list[tuple[int, ...]]:
        """Edge paths of all selected tree nodes, in document order.

        This is the "decode" step the paper describes for column (8): a
        single depth-first traversal of the partially decompressed instance.
        """
        bit = self.instance.bit_of(self.set_name)
        mask_of = self.instance.mask
        return [
            path
            for vertex, path in iter_edge_paths(self.instance, limit=limit)
            if mask_of(vertex) >> bit & 1
        ]

    def iter_tree_matches(self, limit: int = 1_000_000) -> Iterator[tuple[tuple[int, ...], int]]:
        """Yield ``(edge_path, dag_vertex)`` for each selected tree node."""
        bit = self.instance.bit_of(self.set_name)
        for vertex, path in iter_edge_paths(self.instance, limit=limit):
            if self.instance.mask(vertex) >> bit & 1:
                yield path, vertex

    def decompression_ratio(self) -> float:
        """How much the instance grew during evaluation (1.0 = not at all)."""
        if not self.before[0]:
            return 1.0
        return self.after[0] / self.before[0]

    def summary(self) -> str:
        after = self.after
        return (
            f"query time {self.seconds * 1000:8.2f} ms | instance "
            f"{self.before[0]}v/{self.before[1]}e -> {after[0]}v/{after[1]}e | "
            f"selected {self.dag_count()} dag / {self.tree_count()} tree nodes"
        )

"""Tests for the batch workload engine (BatchEvaluator / Engine.query_batch).

The contract under test: a batch decodes to exactly the selections the
sequential engine produces query by query, per-query snapshots stay valid
no matter which later query forces a partial decompression, and identical
algebra subtrees across the mix are evaluated only once.
"""

import pytest

from repro.engine.batch import BatchEvaluator, evaluate_batch
from repro.engine.evaluator import evaluate
from repro.engine.pipeline import Engine, load_for_queries, query_batch
from repro.errors import EvaluationError
from repro.model.schema import is_temp
from repro.xpath.compiler import compile_query

from tests.skeleton.test_loader import BIB_XML

MIX = ["//book/author", "//paper/author", "//book", "/bib/paper/title", "//book/author"]


def solo_paths(instance, query_text):
    return set(evaluate(instance, query_text).tree_paths())


class TestBatchEquivalence:
    def test_matches_sequential_on_bib(self, figure2_compressed):
        batch = evaluate_batch(figure2_compressed, MIX)
        assert len(batch) == len(MIX)
        for query_text, result in zip(MIX, batch):
            assert set(result.tree_paths()) == solo_paths(figure2_compressed, query_text)

    def test_matches_sequential_with_splitting_axes(self, figure2_compressed):
        # Sibling axes force partial decompression mid-batch; earlier and
        # later selections must still decode identically to solo runs.
        mix = [
            "//author",
            "//title/following-sibling::author",
            "//author/preceding-sibling::title",
            "//book",
        ]
        batch = evaluate_batch(figure2_compressed, mix)
        for query_text, result in zip(mix, batch):
            assert set(result.tree_paths()) == solo_paths(figure2_compressed, query_text)

    def test_engine_query_batch_matches_engine_query(self):
        engine = Engine(BIB_XML)
        batch = engine.query_batch(MIX)
        for query_text, result in zip(MIX, batch):
            solo = Engine(BIB_XML).query(query_text)
            assert set(result.tree_paths()) == set(solo.tree_paths())
            assert result.tree_count() == solo.tree_count()

    def test_module_level_query_batch_on_text(self):
        batch = query_batch(BIB_XML, ["//book", "//paper"])
        assert [r.tree_count() for r in batch] == [1, 2]

    def test_compiled_expressions_accepted(self, figure2_compressed):
        exprs = [compile_query(q) for q in MIX]
        batch = evaluate_batch(figure2_compressed, exprs)
        for query_text, result in zip(MIX, batch):
            assert set(result.tree_paths()) == solo_paths(figure2_compressed, query_text)


class TestSnapshotInvariant:
    def test_snapshots_survive_later_splits(self, figure2_compressed):
        # Query 1's result is snapshotted before query 2 splits the shared
        # author leaf (selected under book, unselected under paper); the
        # snapshot must ride through the rebuild.
        mix = ["//author", "//book/author"]
        expected_first = solo_paths(figure2_compressed, mix[0])
        batch = evaluate_batch(figure2_compressed, mix)
        final = batch.instance
        assert batch[0].instance is final and batch[1].instance is final
        assert final.num_vertices > figure2_compressed.num_vertices  # really split
        assert set(batch[0].tree_paths()) == expected_first

    def test_snapshot_sets_are_durable_and_temps_dropped(self, figure2_compressed):
        batch = evaluate_batch(figure2_compressed, MIX)
        schema = batch.instance.schema
        assert not any(is_temp(name) for name in schema)
        assert {result.set_name for result in batch} <= set(schema)
        assert len({result.set_name for result in batch}) == len(MIX)

    def test_input_instance_untouched_by_default(self, figure2_compressed):
        before_schema = figure2_compressed.schema
        before_vertices = figure2_compressed.num_vertices
        evaluate_batch(figure2_compressed, MIX)
        assert figure2_compressed.schema == before_schema
        assert figure2_compressed.num_vertices == before_vertices


class TestSharedSubexpressions:
    def test_duplicate_query_is_fully_reused(self, figure2_compressed):
        evaluator = BatchEvaluator(figure2_compressed)
        first = evaluator.evaluate_batch(["//book/author"], keep_temps=True)
        assert first.stats.nodes_evaluated > 0
        second = evaluator.evaluate_batch(["//book/author"], keep_temps=True)
        # The repeat costs zero fresh algebra-node evaluations: one cache
        # hit at the root of the whole query tree.
        assert second.stats.nodes_evaluated == 0
        assert second.stats.nodes_reused == 1
        assert second.stats.queries == 1
        # The evaluator's own stats accumulate over its lifetime; each
        # BatchResult gets an independent per-batch snapshot.
        assert evaluator.stats.queries == 2
        assert first.stats.queries == 1

    def test_shared_prefix_counted(self, figure2_compressed):
        batch = evaluate_batch(figure2_compressed, ["//book/author", "//book/title"])
        # The whole child(descendant::book ∩ L[book]) prefix of query 2 is
        # served by one cache hit at its root (children are never visited),
        # so query 2 only evaluates its own tag set and final intersection.
        assert batch.stats.nodes_reused == 1
        assert batch.stats.nodes_evaluated == batch.stats.nodes_total - 1
        first_alone = evaluate_batch(figure2_compressed, ["//book/author"]).stats
        assert batch.stats.nodes_evaluated < 2 * first_alone.nodes_evaluated

    def test_stats_sharing_ratio(self, figure2_compressed):
        batch = evaluate_batch(figure2_compressed, ["//book", "//book"])
        assert 0.0 < batch.stats.sharing_ratio < 1.0
        assert batch.stats.queries == 2


class TestBatchEdgeCases:
    def test_empty_batch(self, figure2_compressed):
        batch = evaluate_batch(figure2_compressed, [])
        assert len(batch) == 0
        with pytest.raises(ValueError):
            batch.instance

    def test_missing_set_raises(self, figure2_compressed):
        with pytest.raises(EvaluationError):
            evaluate_batch(figure2_compressed, ["//book", "//nonexistent"])

    def test_context_shared_across_queries(self, figure2_compressed):
        instance = figure2_compressed.copy()
        instance.ensure_set("ctx")
        instance.add_to_set(instance.root, "ctx")
        batch = evaluate_batch(instance, ["book", "paper"], context="ctx")
        assert [r.tree_count() for r in batch] == [1, 2]

    def test_single_query_evaluate_routes_through_batch(self, figure2_compressed):
        evaluator = BatchEvaluator(figure2_compressed)
        result = evaluator.evaluate("//author")
        assert set(result.tree_paths()) == solo_paths(figure2_compressed, "//author")

    def test_union_schema_load_covers_batch(self):
        loaded = load_for_queries(BIB_XML, ["//book/author", '//paper[title]'])
        schema = set(loaded.instance.schema)
        assert {"book", "author", "paper", "title"} <= schema

    def test_batch_summary_mentions_sharing(self, figure2_compressed):
        text = evaluate_batch(figure2_compressed, ["//book", "//book"]).summary()
        assert "reused" in text and "batch of 2 queries" in text

    def test_path_counts_computed_once_per_batch(self, figure2_compressed, monkeypatch):
        # Batch siblings share the final instance, so the (big-integer)
        # path-count table is computed once for the whole batch, not once
        # per result.
        import repro.engine.results as results_module

        batch = evaluate_batch(figure2_compressed, MIX)
        calls = {"n": 0}
        real = results_module.tree_node_counts

        def counting(instance):
            calls["n"] += 1
            return real(instance)

        monkeypatch.setattr(results_module, "tree_node_counts", counting)
        for result in batch:
            result.tree_count()
        assert calls["n"] == 1


class TestResetResults:
    """The serving seam: long-lived evaluators shed their #q snapshots."""

    def test_reset_drops_snapshots_and_reuses_names(self, figure2_compressed):
        evaluator = BatchEvaluator(figure2_compressed)
        first = evaluator.evaluate_batch(MIX)
        counts = [result.tree_count() for result in first]  # decode before reset
        assert any(name.startswith("#q") for name in evaluator.instance.schema)
        evaluator.reset_results()
        assert not any(name.startswith("#q") for name in evaluator.instance.schema)
        # A later batch restarts at #q0 and still decodes identically.
        second = evaluator.evaluate_batch(MIX)
        assert [result.set_name for result in second] == [
            result.set_name for result in first
        ]
        assert [result.tree_count() for result in second] == counts

    def test_schema_does_not_grow_across_reset_batches(self, figure2_compressed):
        evaluator = BatchEvaluator(figure2_compressed)
        evaluator.evaluate_batch(MIX)
        evaluator.reset_results()
        width = len(evaluator.instance.schema)
        for _ in range(5):
            evaluator.evaluate_batch(MIX)
            evaluator.reset_results()
        assert len(evaluator.instance.schema) == width

"""The benchmark queries of Appendix A, verbatim.

The synthetic corpora were designed so that every query below matches the
generated structure and planted strings; all 35 queries are exactly as
printed in the paper's appendix.  Per the paper's design: Q1 is a tree
pattern selecting the root (only ``parent`` after reversal — no
decompression, Corollary 3.7); Q2 the same path forward; Q3 adds descendant
+ string constraints; Q4 branching conditions; Q5 the remaining axes.
"""

from __future__ import annotations

from repro.errors import CorpusError

QUERIES: dict[str, dict[str, str]] = {
    "swissprot": {
        "Q1": "/self::*[ROOT/Record/comment/topic]",
        "Q2": "/ROOT/Record/comment/topic",
        "Q3": '//Record/protein[taxo["Eukaryota"]]',
        "Q4": '//Record[sequence/seq["MMSARGDFLN"] and protein/from["Rattus norvegicus"]]',
        "Q5": '//Record/comment[topic["TISSUE SPECIFICITY"] and '
        'following-sibling::comment/topic["DEVELOPMENTAL STAGE"]]',
    },
    "dblp": {
        "Q1": "/self::*[dblp/article/url]",
        "Q2": "/dblp/article/url",
        "Q3": '//article[author["Codd"]]',
        "Q4": '/dblp/article[author["Chandra"] and author["Harel"]]/title',
        "Q5": '/dblp/article[author["Chandra" and following-sibling::author["Harel"]]]/title',
    },
    "treebank": {
        "Q1": "/self::*[alltreebank/FILE/EMPTY/S/VP/S/VP/NP]",
        "Q2": "/alltreebank/FILE/EMPTY/S/VP/S/VP/NP",
        "Q3": '//S//S[descendant::NNS["children"]]',
        "Q4": '//VP["granting" and descendant::NP["access"]]',
        "Q5": "//VP/NP/VP/NP[following::NP/VP/NP/PP]",
    },
    "omim": {
        "Q1": "/self::*[ROOT/Record/Title]",
        "Q2": "/ROOT/Record/Title",
        "Q3": '//Title["LETHAL"]',
        "Q4": '//Record[Text["consanguineous parents"]]/Title["LETHAL"]',
        "Q5": '//Record[Clinical_Synop/Part["Metabolic"'
        ']/following-sibling::Synop["Lactic acidosis"]]',
    },
    "xmark": {
        "Q1": "/self::*[site/regions/africa/item/description/parlist/listitem/text]",
        "Q2": "/site/regions/africa/item/description/parlist/listitem/text",
        "Q3": '//item[payment["Creditcard"]]',
        "Q4": '//item[location["United States"] and parent::africa]',
        "Q5": '//item/description/parlist/listitem["cassio" and '
        'following-sibling::*["portia"]]',
    },
    "shakespeare": {
        "Q1": "/self::*[all/PLAY/ACT/SCENE/SPEECH/LINE]",
        "Q2": "/all/PLAY/ACT/SCENE/SPEECH/LINE",
        "Q3": '//SPEECH[SPEAKER["MARK ANTONY"]]/LINE',
        "Q4": '//SPEECH[SPEAKER["CLEOPATRA"] or LINE["Cleopatra"]]',
        "Q5": '//SPEECH[SPEAKER["CLEOPATRA"] and '
        'preceding-sibling::SPEECH[SPEAKER["MARK ANTONY"]]]',
    },
    "baseball": {
        "Q1": "/self::*[SEASON/LEAGUE/DIVISION/TEAM/PLAYER]",
        "Q2": "/SEASON/LEAGUE/DIVISION/TEAM/PLAYER",
        "Q3": '//PLAYER[THROWS["Right"]]',
        "Q4": '//PLAYER[ancestor::TEAM[TEAM_CITY["Atlanta"]] or '
        '(HOME_RUNS["5"] and STEALS["1"])]',
        "Q5": '//PLAYER[POSITION["First Base"] and '
        'following-sibling::PLAYER[POSITION["Starting Pitcher"]]]',
    },
}

QUERY_IDS = ("Q1", "Q2", "Q3", "Q4", "Q5")


def queries_for(corpus: str) -> dict[str, str]:
    try:
        return QUERIES[corpus]
    except KeyError:
        raise CorpusError(f"no benchmark queries for corpus {corpus!r}") from None


def xmark_q2_note() -> str:
    """The only semantic wrinkle worth recording: XMark Q2 ends in ``text``,
    which in the original document is an element tag (XMark wraps text
    content in <text> elements); our generator plants exactly that path."""
    return "XMark Q2's trailing step selects <text> elements, as in XMark itself."

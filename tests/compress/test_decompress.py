"""Tests for tree materialisation T(I) (Proposition 2.2)."""

import pytest

from repro.compress.decompress import decompress, document_order
from repro.errors import DecompressionLimitError
from repro.model.equivalence import equivalent
from repro.model.instance import Instance
from repro.model.paths import tree_size


class TestDecompress:
    def test_figure2_unfolds_to_12_nodes(self, figure2_compressed):
        result = decompress(figure2_compressed)
        assert result.tree.num_vertices == 12
        assert result.tree.is_tree()
        result.tree.validate()

    def test_unfolding_is_equivalent(self, figure2_compressed):
        result = decompress(figure2_compressed)
        assert equivalent(result.tree, figure2_compressed)

    def test_tree_decompresses_to_itself(self, bib_tree):
        result = decompress(bib_tree)
        assert result.tree.num_vertices == bib_tree.num_vertices
        assert equivalent(result.tree, bib_tree)

    def test_origin_mapping(self, figure2_compressed):
        instance = figure2_compressed
        result = decompress(instance)
        author = next(iter(instance.members("author")))
        unfolded = result.vertices_from(author)
        assert len(unfolded) == 5
        for tree_vertex in unfolded:
            assert result.tree.in_set(tree_vertex, "author")

    def test_origin_of_root(self, figure2_compressed):
        result = decompress(figure2_compressed)
        assert result.origin[result.tree.root] == figure2_compressed.root

    def test_paths_match_model_paths(self, figure2_compressed):
        from repro.model.paths import edge_path_set

        result = decompress(figure2_compressed)
        tree_paths = set(result.paths())
        assert tree_paths == set(edge_path_set(figure2_compressed))

    def test_limit_enforced_before_allocation(self):
        instance = Instance()
        vertex = instance.new_vertex()
        for _ in range(60):
            vertex = instance.new_vertex(children=[(vertex, 2)])
        instance.set_root(vertex)
        assert tree_size(instance) > 10**18
        with pytest.raises(DecompressionLimitError):
            decompress(instance, limit=10_000)

    def test_document_order_is_preorder(self, bib_tree):
        order = document_order(bib_tree)
        assert order[0] == bib_tree.root
        assert sorted(order) == sorted(bib_tree.reachable())

    def test_sibling_ids_consecutive(self, figure2_compressed):
        result = decompress(figure2_compressed)
        for vertex in result.tree.preorder():
            children = [child for child, _ in result.tree.children(vertex)]
            if len(children) > 1:
                assert children == list(range(children[0], children[0] + len(children)))

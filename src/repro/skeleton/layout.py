"""Text layout: the glue between a compressed skeleton and its containers.

XMILL-style decomposition (section 1) splits a document into the skeleton
(compressed here into a DAG) and string containers.  To be a *lossless*
decomposition — and to support the paper's section 4 workflow of labeling a
stored skeleton with new string constraints without re-reading the XML —
we must remember where each text chunk sat relative to the markup.

A :class:`TextLayout` records, for every text chunk in document order::

    (element_ordinal, slot)

where ``element_ordinal`` numbers elements in document order (0 = the root
element; the virtual document root is -1) and ``slot`` is how many child
*elements* of that element had already been closed when the chunk appeared
(so mixed content interleaves correctly on reassembly).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TextLayout:
    """Placement records for all text chunks, in document order."""

    placements: list[tuple[int, int]] = field(default_factory=list)

    def record(self, element_ordinal: int, slot: int) -> None:
        self.placements.append((element_ordinal, slot))

    def __len__(self) -> int:
        return len(self.placements)

    def by_element(self) -> dict[int, list[tuple[int, int]]]:
        """Group placements per element: ordinal -> [(slot, chunk_index)].

        ``chunk_index`` indexes the document-order chunk list (which is also
        the order of :meth:`repro.strings.containers.ContainerStore.in_document_order`).
        """
        grouped: dict[int, list[tuple[int, int]]] = {}
        for chunk_index, (ordinal, slot) in enumerate(self.placements):
            grouped.setdefault(ordinal, []).append((slot, chunk_index))
        return grouped


class LayoutTracker:
    """Streaming helper the loader drives to build a :class:`TextLayout`."""

    __slots__ = ("layout", "_ordinals", "_closed_children", "_next_ordinal")

    def __init__(self) -> None:
        self.layout = TextLayout()
        self._ordinals: list[int] = [-1]  # the virtual document root
        self._closed_children: list[int] = [0]
        self._next_ordinal = 0

    def open_element(self) -> int:
        ordinal = self._next_ordinal
        self._next_ordinal += 1
        self._ordinals.append(ordinal)
        self._closed_children.append(0)
        return ordinal

    def close_element(self) -> None:
        self._ordinals.pop()
        self._closed_children.pop()
        self._closed_children[-1] += 1

    def text(self) -> None:
        self.layout.record(self._ordinals[-1], self._closed_children[-1])

"""Property tests: histogram invariants hold for any observation stream.

The Prometheus exposition is only useful if its invariants are
unconditional: bucket counts monotone cumulative, the ``+Inf`` bucket
equal to ``_count``, ``_sum`` equal to the sum of observations, and —
end to end — total observations equal to the requests actually issued.
Hypothesis drives the pure instrument with arbitrary value streams and
label mixes; the integration half pins the same invariants on a live
scrape for every (mode × front-end) combination the server supports.
"""

import json
import math
import threading
import urllib.request

import pytest
from hypothesis import given, settings, strategies as st

from repro.server.catalog import Catalog
from repro.server.http import create_server, wait_ready
from repro.server.metrics import (
    Histogram,
    MetricsRegistry,
    histogram_series,
    parse_prometheus_text,
)

from tests.skeleton.test_loader import BIB_XML

#: Small bucket ladders chosen adversarially: single-bucket, dense, sparse.
BUCKET_LADDERS = st.sampled_from([
    (0.1,),
    (0.001, 0.01, 0.1, 1.0),
    (1.0, 2.0, 3.0, 4.0, 5.0),
    (0.005, 5.0),
])

#: Observation values straddling every bucket edge, including exact bounds
#: (upper-inclusive per Prometheus), zero, and far-overflow values.
OBSERVATIONS = st.lists(
    st.one_of(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.sampled_from([0.0, 0.001, 0.005, 0.01, 0.1, 1.0, 5.0, 1e6]),
    ),
    max_size=200,
)


class TestHistogramInvariants:
    @given(buckets=BUCKET_LADDERS, values=OBSERVATIONS)
    @settings(max_examples=200, deadline=None)
    def test_snapshot_invariants(self, buckets, values):
        histogram = Histogram("h_seconds", "h", buckets=buckets)
        for value in values:
            histogram.observe(value)
        snapshot = histogram.snapshot()
        cumulative = snapshot["cumulative"]
        # Monotone cumulative, ending in the total observation count.
        assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))
        assert cumulative[-1] == snapshot["count"] == len(values)
        assert snapshot["sum"] == pytest.approx(sum(values))
        # Upper-inclusive bucketing: every value <= bound is inside it.
        for bound, running in zip(snapshot["le"], cumulative):
            assert running == sum(1 for value in values if value <= bound)

    @given(
        buckets=BUCKET_LADDERS,
        series=st.dictionaries(
            st.sampled_from(["/query", "/stats", "a b", 'quo"te', "back\\slash"]),
            OBSERVATIONS,
            max_size=3,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_render_parse_round_trip(self, buckets, series):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_test_seconds", "h", ("route",), buckets=buckets
        )
        for route, values in series.items():
            for value in values:
                histogram.observe(value, route=route)
        # The strict parser enforces the histogram invariants itself —
        # parse failure IS the property failure.
        families = parse_prometheus_text(registry.render())
        if not series:
            return
        samples = families["repro_test_seconds"]["samples"]
        for route, values in series.items():
            rows, total_sum, count = histogram_series(
                samples, "repro_test_seconds", route=route
            )
            if not values:
                # A label set never observed emits no series at all.
                assert rows == [] and count == 0
                continue
            assert count == len(values)
            assert total_sum == pytest.approx(sum(values))
            assert rows[-1] == (math.inf, len(values))
            counts = [value for _, value in rows]
            assert all(a <= b for a, b in zip(counts, counts[1:]))


@pytest.mark.parametrize("frontend", ["threaded", "async"])
@pytest.mark.parametrize("mode", ["snapshot", "persistent"])
def test_live_scrape_observations_equal_requests_issued(tmp_path, mode, frontend):
    """End to end: every request issued is exactly one histogram observation."""
    catalog_dir = str(tmp_path / "cat")
    Catalog(catalog_dir).add("bib", BIB_XML)
    server = create_server(catalog_dir, port=0, mode=mode, frontend=frontend)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    assert wait_ready(host, port, timeout=30)
    base = f"http://{host}:{port}"
    issued = {"/query": 0, "/healthz": 0}
    try:
        # wait_ready() already probed /healthz: measure deltas from a
        # baseline scrape, not absolute counts.
        with urllib.request.urlopen(f"{base}/metrics", timeout=30) as response:
            before = parse_prometheus_text(response.read().decode())
        baseline = {
            route: histogram_series(
                before["repro_http_request_seconds"]["samples"],
                "repro_http_request_seconds",
                route=route,
            )[2]
            for route in issued
        }
        for index in range(7):
            request = urllib.request.Request(
                f"{base}/query",
                data=json.dumps({"document": "bib", "query": "//author"}).encode(),
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 200
            issued["/query"] += 1
        for index in range(3):
            with urllib.request.urlopen(f"{base}/healthz", timeout=30) as response:
                assert response.status == 200
            issued["/healthz"] += 1
        with urllib.request.urlopen(f"{base}/metrics", timeout=30) as response:
            families = parse_prometheus_text(response.read().decode())
        samples = families["repro_http_request_seconds"]["samples"]
        for route, expected in issued.items():
            rows, _, count = histogram_series(
                samples, "repro_http_request_seconds", route=route
            )
            assert count - baseline[route] == expected, (mode, frontend, route)
            assert rows[-1] == (math.inf, count)
        # The per-route counter family tells the same story.
        requests_total = sum(
            value
            for _, labels, value in families["repro_http_requests_total"]["samples"]
            if labels["route"] in issued
        )
        assert requests_total == sum(issued.values()) + sum(baseline.values())
    finally:
        server.shutdown()
        server.server_close()
        server.service.close()
        thread.join(timeout=10)

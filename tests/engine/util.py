"""Shared helpers for engine tests: oracle comparison on decoded selections."""

from __future__ import annotations

from repro.compress.decompress import decompress
from repro.engine.evaluator import evaluate
from repro.engine.tree_evaluator import evaluate_on_tree
from repro.model.instance import Instance


def oracle_paths(instance: Instance, query, context_vertices=None) -> set[tuple]:
    """Evaluate on the fully decompressed tree; return selected edge paths."""
    result = decompress(instance)
    baseline = evaluate_on_tree(result.tree, query, context=context_vertices)
    paths = result.paths()
    return {paths[v] for v in baseline.vertices}


def engine_paths(instance: Instance, query, axes: str = "functional") -> set[tuple]:
    """Evaluate on the compressed instance; return selected edge paths."""
    return set(evaluate(instance, query, axes=axes).tree_paths())


def assert_engines_agree(instance: Instance, query) -> None:
    """Both compressed engines must decode to the tree oracle's selection."""
    expected = oracle_paths(instance, query)
    assert engine_paths(instance, query, "functional") == expected
    assert engine_paths(instance, query, "inplace") == expected

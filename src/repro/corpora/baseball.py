"""1998 Major League Baseball statistics corpus.

The baseball file is the paper's most compressible query corpus (0.3%
bare, 2.6% with tags; only 26/83 DAG vertices): every player record has one
of two fixed field layouts (batter or pitcher), so almost everything is
shared.  We reproduce exactly that: two rigid player shapes, fixed league /
division / team nesting.

Planted strings (Appendix A, Baseball queries): throws "Right", a team in
"Atlanta", batters with HOME_RUNS "5" and STEALS "1", and a "First Base"
player followed (among the team's players) by a "Starting Pitcher" (Q5).
"""

from __future__ import annotations

import random

from repro.corpora.base import GeneratedCorpus, XMLBuilder, check_scale, rng_for

_CITIES = (
    "Atlanta", "Boston", "Chicago", "Denver", "Houston", "Miami",
    "New York", "Seattle", "St. Louis", "Toronto",
)
_NICKNAMES = ("Braves", "Sox", "Cubs", "Rockies", "Astros", "Marlins", "Mets", "Mariners")
_SURNAMES = ("Jones", "Smith", "Lopez", "Brown", "Clark", "Davis", "Evans", "Moyer")
_GIVEN = ("Andy", "Bob", "Carlos", "Dave", "Ed", "Frank", "Greg", "Hank")
_BATTING_POSITIONS = ("First Base", "Second Base", "Shortstop", "Third Base", "Catcher", "Outfield")


def _batter(builder: XMLBuilder, rng: random.Random, position: str) -> None:
    builder.open("PLAYER")
    builder.leaf("SURNAME", rng.choice(_SURNAMES))
    builder.leaf("GIVEN_NAME", rng.choice(_GIVEN))
    builder.leaf("POSITION", position)
    builder.leaf("GAMES", str(rng.randint(20, 162)))
    builder.leaf("AT_BATS", str(rng.randint(50, 600)))
    builder.leaf("HITS", str(rng.randint(10, 200)))
    builder.leaf("HOME_RUNS", str(rng.randint(0, 9)))
    builder.leaf("RBI", str(rng.randint(0, 140)))
    builder.leaf("STEALS", str(rng.randint(0, 9)))
    builder.leaf("THROWS", "Right" if rng.random() < 0.7 else "Left")
    builder.leaf("BATS", "Right" if rng.random() < 0.55 else "Left")
    builder.close()


def _pitcher(builder: XMLBuilder, rng: random.Random, starting: bool) -> None:
    builder.open("PLAYER")
    builder.leaf("SURNAME", rng.choice(_SURNAMES))
    builder.leaf("GIVEN_NAME", rng.choice(_GIVEN))
    builder.leaf("POSITION", "Starting Pitcher" if starting else "Relief Pitcher")
    builder.leaf("GAMES", str(rng.randint(10, 70)))
    builder.leaf("WINS", str(rng.randint(0, 22)))
    builder.leaf("LOSSES", str(rng.randint(0, 18)))
    builder.leaf("SAVES", str(rng.randint(0, 45)))
    builder.leaf("ERA", f"{rng.uniform(1.5, 6.5):.2f}")
    builder.leaf("THROWS", "Right" if rng.random() < 0.7 else "Left")
    builder.leaf("BATS", "Right" if rng.random() < 0.55 else "Left")
    builder.close()


def _team(builder: XMLBuilder, rng: random.Random, city: str, players: int) -> None:
    builder.open("TEAM")
    builder.leaf("TEAM_CITY", city)
    builder.leaf("TEAM_NAME", rng.choice(_NICKNAMES))
    batters = max(2, players * 3 // 5)
    # A First Base player among the batters, then pitchers follow — this
    # realises Q5's following-sibling condition in every team.
    for index in range(batters):
        position = "First Base" if index == 0 else rng.choice(_BATTING_POSITIONS)
        _batter(builder, rng, position)
    for index in range(players - batters):
        _pitcher(builder, rng, starting=index == 0)
    builder.close().newline()


def generate(scale: int = 30, seed: int = 0) -> GeneratedCorpus:
    """Generate a season with ``scale`` teams of ~25 players each."""
    check_scale(scale)
    rng = rng_for("baseball", scale, seed)
    builder = XMLBuilder()
    builder.open("SEASON").newline()
    builder.leaf("YEAR", "1998")
    cities = list(_CITIES)
    team_index = 0
    for league in ("National", "American"):
        builder.open("LEAGUE").newline()
        builder.leaf("LEAGUE_NAME", f"{league} League")
        for division in ("East", "Central", "West"):
            builder.open("DIVISION").newline()
            builder.leaf("DIVISION_NAME", division)
            for _ in range(max(1, scale // 6)):
                city = cities[team_index % len(cities)]
                team_index += 1
                _team(builder, rng, city, players=25)
            builder.close().newline()
        builder.close().newline()
    builder.close()
    return GeneratedCorpus(name="baseball", xml=builder.result(), scale=scale, seed=seed)

"""Rendering compiled query plans — Figure 3 and Example 3.1.

Every Core XPath query compiles to the node-set algebra of section 3.1:
the main path runs forward from {root}, predicates are *reversed* (child
becomes parent, following becomes preceding, ...) so conditions flow toward
the query root as plain set operations.  This example prepares the paper's
Figure 3 query and a few Appendix A queries through the :mod:`repro.api`
façade and prints each :class:`repro.api.Plan` twice — the ASCII tree and
the structured JSON every serving surface shares (``repro explain --json``,
``repro query --explain-json``, the HTTP ``/explain`` route) — and flags
which plans are upward-only (Corollary 3.7: never decompress).

Run:  python examples/query_plans.py
"""

from repro.api import PreparedQuery

QUERIES = [
    # Figure 3 / Example 3.1 — verbatim from the paper.
    "/descendant::a/child::b[child::c/child::d or not(following::*)]",
    # Example 3.5.
    "//a/b",
    # A Q1-style tree pattern (upward-only after reversal).
    "/self::*[SEASON/LEAGUE/DIVISION/TEAM/PLAYER]",
    # Branching predicate with a string constraint.
    '//Record[sequence/seq["MMSARGDFLN"] and protein/from["Rattus norvegicus"]]',
]


def main() -> None:
    for query_text in QUERIES:
        prepared = PreparedQuery.compile(query_text)
        plan = prepared.plan()
        print("=" * 72)
        print(f"Query: {query_text}\n")
        print(plan.render())
        print(f"\n  schema the one-scan load must extract: tags={list(plan.required_tags)}"
              f" strings={list(plan.required_strings)}")
        if plan.upward_only:
            print("  upward-only: evaluation will NOT decompress (Corollary 3.7)")
        else:
            print(f"  |Q| = {plan.size()} -> worst-case growth 2^|Q| (Theorem 3.6)")
        print("\n  the same plan as structured JSON (what /explain serves):")
        print("  " + plan.to_json())
        print()


if __name__ == "__main__":
    main()

"""Shared fixtures for the benchmark suite.

Corpora are generated once per session at a scale controlled by the
``REPRO_BENCH_SCALE`` environment variable (a float multiplier on the
registry defaults; 1.0 gives a few-minute full run, 10 approaches paper
node counts at the cost of a long pure-Python parse).

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the reproduced
Figure 6 / Figure 7 tables; timing statistics come from pytest-benchmark.
"""

from __future__ import annotations

import os

import pytest

from repro.corpora import CORPORA, generate

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def corpus_cache():
    """Lazily generated corpora, shared across all benchmark modules."""
    cache: dict[str, str] = {}

    def get(name: str) -> str:
        if name not in cache:
            info = CORPORA[name]
            scale = max(1, int(info.default_scale * SCALE))
            cache[name] = generate(name, scale, SEED).xml
        return cache[name]

    return get


def emit(text: str) -> None:
    """Print a report block (visible with -s; kept out of benchmark JSON)."""
    print(f"\n{text}")


_REPORTS: list = []


def register_report(builder) -> None:
    """Register a zero-arg callable returning a report string (or None).

    Reports print at session teardown, so they work under --benchmark-only
    (which skips ordinary tests that would otherwise print the tables).
    """
    _REPORTS.append(builder)


@pytest.fixture(scope="session", autouse=True)
def _print_reports_at_teardown():
    yield
    blocks = []
    for builder in _REPORTS:
        text = builder()
        if text:
            blocks.append(text)
    if not blocks:
        return
    report = "\n\n".join(blocks)
    print("\n\n" + report + "\n")
    # Also persist the tables: without -s, captured teardown output is
    # invisible, but the reproduced figures are the point of the suite.
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "bench_tables.txt")
    with open(os.path.abspath(path), "w", encoding="utf-8") as handle:
        handle.write(report + "\n")

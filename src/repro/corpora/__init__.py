"""Synthetic benchmark corpora standing in for the paper's eight datasets.

See DESIGN.md section 2: real SwissProt/DBLP/TreeBank/... files are not
available offline, so each module here generates a document with the same
structural character and plants the strings the Appendix A queries need.
"""

from repro.corpora.base import CorpusInfo, GeneratedCorpus
from repro.corpora.registry import CORPORA, QUERY_CORPORA, generate, get_corpus

__all__ = [
    "CORPORA",
    "CorpusInfo",
    "GeneratedCorpus",
    "QUERY_CORPORA",
    "generate",
    "get_corpus",
]

"""The transport-agnostic route core shared by both HTTP front-ends.

The threaded :mod:`repro.server.http` and the asyncio
:mod:`repro.server.asyncio_http` front-ends parse bytes off their
sockets, build a :class:`Request`, and call :meth:`Router.dispatch`;
everything after that — routing, validation, deadline/admission
bookkeeping, the error-kind → status mapping, the uniform envelope —
lives here exactly once, so the two front-ends produce byte-identical
response bodies by construction (the differential leg of
``bench_server.py --frontend async`` proves it against live traffic).

Tracing: every request carries a trace ID — taken from the client's
``X-Repro-Trace`` header when present, minted at accept otherwise —
which is echoed on every response as the ``X-Repro-Trace`` header,
stamped into ``/query`` result payloads, carried through the coalescer
and over the worker wire, and written to both front-ends' access logs.
"""

from __future__ import annotations

import json
import os
import time
import urllib.parse
# Distinct from builtins.TimeoutError before 3.11, an alias after.
from concurrent.futures import TimeoutError as FuturesTimeoutError

from repro.api.envelope import error_envelope
from repro.errors import (
    CatalogError,
    DeadlineExceededError,
    IntegrityError,
    MutationError,
    OverloadedError,
    QuarantinedError,
    ReproError,
    WorkerUnavailableError,
    XPathCompileError,
    XPathSyntaxError,
)
from repro.server.metrics import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.server.metrics import route_label
from repro.server.resilience import Deadline

#: Registration payloads above this size are rejected (bytes).
MAX_BODY = 256 * 1024 * 1024


def new_trace() -> str:
    """A fresh 64-bit trace ID (hex), minted at accept time."""
    return os.urandom(8).hex()


class Headers(dict):
    """Case-insensitive header access over lower-cased keys.

    The threaded front-end passes the stdlib ``email.message.Message``
    (already case-insensitive); the asyncio parser builds one of these.
    """

    def get(self, name, default=None):  # noqa: A003 - dict signature
        return super().get(name.lower(), default)


class Request:
    """One parsed HTTP request, independent of the transport that read it."""

    __slots__ = ("method", "path", "headers", "body", "client", "received_at", "trace")

    def __init__(
        self,
        method: str,
        path: str,
        headers=None,
        body: bytes | None = None,
        client: str = "",
        received_at: float | None = None,
        trace: str | None = None,
    ):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body
        self.client = client
        #: Monotonic accept timestamp — deadline budgets start here, so
        #: time spent queued behind the executor bridge counts against
        #: the request's budget exactly like coalescing wait does.
        self.received_at = time.monotonic() if received_at is None else received_at
        self.trace = trace or self.header("X-Repro-Trace") or new_trace()

    def header(self, name: str, default=None):
        if self.headers is None:
            return default
        return self.headers.get(name, default)


class Response:
    """Status + JSON payload (or raw body) + extra headers."""

    __slots__ = ("status", "body", "headers", "content_type")

    def __init__(
        self,
        status: int,
        payload: dict | None = None,
        headers: dict | None = None,
        body: bytes | None = None,
        content_type: str = "application/json",
    ):
        self.status = status
        self.body = json.dumps(payload).encode("utf-8") if body is None else body
        self.headers = dict(headers or {})
        self.content_type = content_type


class Router:
    """Every route of the serving surface, returning :class:`Response` objects.

    ``service_provider`` is a zero-arg callable returning the live
    service: the HTTP server objects are constructed before their
    service is attached (socket binds fail fast), so the router must
    re-read it per request rather than capture it at construction.
    """

    def __init__(self, service_provider, default_deadline_ms: float = 0.0, metrics=None):
        self._service_provider = service_provider
        self.default_deadline_ms = default_deadline_ms
        self.metrics = metrics

    @property
    def service(self):
        return self._service_provider()

    # -- entry points -----------------------------------------------------

    def dispatch(self, request: Request) -> Response:
        """Route one request; never raises — the client always gets JSON."""
        started = time.perf_counter()
        try:
            response = self._route(request)
        except Exception as error:  # noqa: BLE001 - last-ditch: no tracebacks on the wire
            response = self._plain_error(500, f"{type(error).__name__}: {error}", "internal")
        return self._finish(request, response, started)

    def reject(self, request: Request, status: int, message: str, kind: str) -> Response:
        """A transport-level refusal (oversized body, malformed framing)
        rendered as the same envelope + trace header + metrics as any
        routed response."""
        started = time.perf_counter()
        return self._finish(request, self._plain_error(status, message, kind), started)

    def _finish(self, request: Request, response: Response, started: float) -> Response:
        response.headers.setdefault("X-Repro-Trace", request.trace)
        if self.metrics is not None:
            self.metrics.observe_request(
                route_label(request.path), request.method, response.status,
                time.perf_counter() - started,
            )
        return response

    # -- envelope helpers -------------------------------------------------

    def _plain_error(self, status: int, message: str, kind: str = "bad-request") -> Response:
        """A request-shape failure as the uniform error envelope."""
        return Response(status, error_envelope(kind=kind, message=message))

    def _fail(
        self,
        status: int,
        error: BaseException,
        message: str | None = None,
        headers: dict | None = None,
    ) -> Response:
        """An exception as the uniform envelope (kind derived from its family)."""
        return Response(status, error_envelope(error, message=message), headers=headers)

    def _serve_errors(self, error: BaseException) -> Response:
        """Map one service-layer exception to its status + envelope.

        Shared by ``/query`` and ``/explain`` so the two routes can never
        disagree on how an error family is presented.
        """
        if isinstance(error, OverloadedError):
            # An honest shed: 429 with a machine-readable Retry-After (the
            # header wants integer seconds; the exact float rides in the
            # envelope's detail).
            retry_after = max(0.0, getattr(error, "retry_after", 1.0))
            return self._fail(
                429, error, headers={"Retry-After": str(max(1, int(retry_after + 0.999)))}
            )
        if isinstance(error, DeadlineExceededError):
            return self._fail(504, error)
        if isinstance(error, (QuarantinedError, IntegrityError)):
            # Before their CatalogError parent: a quarantined or torn
            # document is the server's problem (503 until verified or
            # repaired), not a client addressing mistake (404).
            return self._fail(503, error)
        if isinstance(error, MutationError):
            # The mutation request — not the catalog — is at fault (unknown
            # op, unreachable path, malformed fragment); nothing was changed.
            return self._fail(400, error)
        if isinstance(error, CatalogError):
            return self._fail(404, error)
        if isinstance(error, (XPathSyntaxError, XPathCompileError)):
            return self._fail(400, error, message=f"invalid query: {error}")
        if isinstance(error, FuturesTimeoutError):
            return self._fail(
                504,
                error,
                message=f"request timed out after {self.service.request_timeout}s",
            )
        if isinstance(error, WorkerUnavailableError):
            # The shard's worker died with this request in flight; the fleet
            # respawns it, so the failure is transient — tell the client to
            # retry, never hang or serve a wrong answer.
            return self._fail(503, error)
        if isinstance(error, ReproError):
            return self._fail(500, error)
        # e.g. FileNotFoundError when a concurrent DELETE removed the
        # chunk files mid-load: still a JSON envelope, never a dropped
        # connection with a server-side traceback.
        return self._plain_error(500, f"{type(error).__name__}: {error}", kind="internal")

    def _read_json(self, request: Request) -> tuple[dict | None, Response | None]:
        body = request.body
        if not body:
            return None, self._plain_error(400, "missing request body")
        if len(body) > MAX_BODY:
            return None, self._plain_error(
                413, f"request body over {MAX_BODY} bytes", kind="payload-too-large"
            )
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return None, self._plain_error(400, f"malformed JSON body: {error}")
        if not isinstance(payload, dict):
            return None, self._plain_error(400, "request body must be a JSON object")
        return payload, None

    # -- routes -----------------------------------------------------------

    def _route(self, request: Request) -> Response:
        if request.method == "GET":
            return self._get(request)
        if request.method == "POST":
            return self._post(request)
        if request.method == "DELETE":
            return self._delete(request)
        return self._plain_error(
            501, f"unsupported method {request.method}", kind="bad-request"
        )

    def _get(self, request: Request) -> Response:
        service = self.service
        path = request.path
        if path == "/healthz":
            payload = service.health_dict()
            payload["documents"] = len(service.catalog)
            payload["mode"] = service.mode
            workers = getattr(service, "workers", 0)
            if workers:
                payload["workers"] = workers
            # "degraded" is still a 2xx (the server answers what it can) but
            # a *distinct* one, so probes tell fine from limping without
            # parsing the body.
            return Response(200 if payload["status"] == "ok" else 203, payload)
        if path == "/stats":
            return Response(200, service.stats_dict())
        if path == "/metrics":
            if self.metrics is None:
                return self._plain_error(
                    404, "metrics are not enabled on this server", kind="not-found"
                )
            return Response(
                200,
                body=self.metrics.render().encode("utf-8"),
                content_type=METRICS_CONTENT_TYPE,
            )
        if path == "/catalog":
            from dataclasses import asdict

            return Response(
                200, {"documents": [asdict(entry) for entry in service.catalog.entries()]}
            )
        if path.split("?", 1)[0] == "/explain":
            query_string = path.partition("?")[2]
            params = urllib.parse.parse_qs(query_string)
            return self._explain(
                document=(params.get("document") or [None])[0],
                query_text=(params.get("query") or [None])[0],
                analyze=(params.get("analyze") or ["false"])[0].lower()
                in ("1", "true", "yes"),
            )
        return self._plain_error(404, f"no such endpoint: GET {path}", kind="not-found")

    def _post(self, request: Request) -> Response:
        path = request.path
        if path == "/query":
            return self._post_query(request)
        if path == "/explain":
            payload, failure = self._read_json(request)
            if failure is not None:
                return failure
            return self._explain(
                document=payload.get("document"),
                query_text=payload.get("query"),
                analyze=bool(payload.get("analyze", False)),
            )
        if path == "/mutate":
            return self._post_mutate(request)
        if path.startswith("/catalog/"):
            return self._post_catalog(request, path[len("/catalog/"):])
        return self._plain_error(404, f"no such endpoint: POST {path}", kind="not-found")

    def _delete(self, request: Request) -> Response:
        path = request.path
        if not path.startswith("/catalog/"):
            return self._plain_error(
                404, f"no such endpoint: DELETE {path}", kind="not-found"
            )
        name = path[len("/catalog/"):]
        service = self.service
        try:
            # Remove from the catalog FIRST: under --workers N the evict
            # broadcast makes every worker re-read the manifest, and only a
            # post-removal manifest makes them drop their cached entry and
            # chunk store — evicting first would refresh against a manifest
            # that still lists the document, leaving workers serving stale
            # chunks if the name is re-registered.
            service.catalog.remove(name)
            evicted = service.evict(name)
        except CatalogError as error:
            return self._fail(404, error)
        return Response(200, {"removed": name, "pool_entries_evicted": evicted})

    # -- handlers ---------------------------------------------------------

    def _post_query(self, request: Request) -> Response:
        payload, failure = self._read_json(request)
        if failure is not None:
            return failure
        document = payload.get("document")
        query_text = payload.get("query")
        if not isinstance(document, str) or not isinstance(query_text, str):
            return self._plain_error(400, "body needs string fields 'document' and 'query'")
        paths = payload.get("paths", 0)
        limit = payload.get("limit", None)
        if not isinstance(paths, int) or paths < 0:
            return self._plain_error(400, "'paths' must be a non-negative integer")
        kwargs = {"paths": paths}
        if limit is not None:
            if not isinstance(limit, int) or limit < 1:
                return self._plain_error(400, "'limit' must be a positive integer")
            kwargs["limit"] = limit
        # End-to-end deadline: body field, else header, else the server's
        # configured default (0 = unbounded).  The budget starts at accept
        # (``request.received_at``) — parse time, executor-bridge queueing,
        # coalescing wait, pool loads, worker queues all count against it.
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is None:
            header = request.header("X-Repro-Deadline-Ms")
            if header is not None:
                try:
                    deadline_ms = float(header)
                except ValueError:
                    return self._plain_error(400, "X-Repro-Deadline-Ms must be a number")
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        if deadline_ms:
            if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
                return self._plain_error(400, "'deadline_ms' must be a positive number")
            kwargs["deadline"] = Deadline(request.received_at + deadline_ms / 1000.0)
        # Rate-limit identity: an explicit client header, else the peer.
        kwargs["client"] = request.header("X-Repro-Client") or request.client
        kwargs["trace"] = request.trace
        try:
            response = self.service.query(document, query_text, **kwargs)
        except Exception as error:  # noqa: BLE001 - the client must get JSON
            return self._serve_errors(error)
        return Response(200, response)

    def _explain(
        self, document: str | None, query_text: str | None, analyze: bool = False
    ) -> Response:
        """Answer ``/explain``: the structured Plan of one query as JSON.

        With a ``document`` the service attaches instance provenance (pool
        residency in process, shard affinity + residency under a fleet)
        and, when the service optimizes, the optimizer annotations of the
        explain contract (:mod:`repro.api.plan`); without one the plan of
        the bare query text is returned.  ``analyze`` (GET query param or
        JSON body boolean) executes the plan and adds per-node ``actual``
        cardinalities — it needs a document (a fleet measures on a private
        dispatcher-side load so shard masters stay untouched).
        """
        if not isinstance(query_text, str) or not query_text:
            return self._plain_error(400, "explain needs a string field 'query'")
        if document is not None and not isinstance(document, str):
            return self._plain_error(400, "'document' must be a string when given")
        try:
            if document is None:
                from repro.api.plan import Plan

                response = {
                    "document": None,
                    "query": query_text,
                    "plan": Plan.from_query(query_text).to_dict(),
                }
            else:
                response = self.service.explain(document, query_text, analyze=analyze)
        except Exception as error:  # noqa: BLE001 - the client must get JSON
            return self._serve_errors(error)
        return Response(200, response)

    def _post_mutate(self, request: Request) -> Response:
        """``POST /mutate``: apply a mutation batch to a served document.

        Body: ``{"document": name, "mutations": [{"op", "path", "xml"?}, ...]}``
        (see :mod:`repro.mutation.ops` for the op vocabulary and path
        addressing).  The whole batch applies atomically — on any error
        nothing is published and the client gets 400 (bad mutation) or 404
        (unknown document); on success the response carries the new
        ``doc_version`` and maintenance timings.
        """
        payload, failure = self._read_json(request)
        if failure is not None:
            return failure
        document = payload.get("document")
        mutations = payload.get("mutations")
        if not isinstance(document, str):
            return self._plain_error(400, "body needs a string field 'document'")
        if not isinstance(mutations, list):
            return self._plain_error(400, "body needs a list field 'mutations'")
        try:
            response = self.service.mutate(document, mutations)
        except Exception as error:  # noqa: BLE001 - the client must get JSON
            return self._serve_errors(error)
        return Response(200, response)

    def _post_catalog(self, request: Request, name: str) -> Response:
        payload, failure = self._read_json(request)
        if failure is not None:
            return failure
        xml = payload.get("xml")
        if not isinstance(xml, str):
            return self._plain_error(400, "body needs a string field 'xml'")
        attributes = payload.get("attributes", "ignore")
        try:
            entry = self.service.catalog.add(name, xml, attributes=attributes)
        except ReproError as error:
            return self._fail(400, error)
        from dataclasses import asdict

        return Response(201, asdict(entry))

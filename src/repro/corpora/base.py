"""Shared machinery for the synthetic benchmark corpora.

The paper evaluates on eight real XML corpora (SwissProt, DBLP, Penn
TreeBank, OMIM, XMark, Shakespeare, 1998 Baseball, TPC-D) that are not
available offline; each module in this package generates a synthetic
document with the same *structural character* (depth, regularity, fan-out,
tag vocabulary) and plants the strings the Appendix A queries search for, so
every benchmark query selects at least one node, as in the paper.  See
DESIGN.md section 2 for the substitution rationale.

Generators are deterministic functions of ``(scale, seed)`` and write XML
text through the tiny :class:`XMLBuilder` (direct text emission — building a
DOM for millions of nodes would dominate generation time).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.errors import CorpusError
from repro.xmlio.escape import escape_text

#: A small English-ish word pool for filler text (seeded sampling).
WORDS = (
    "the quick brown fox jumps over a lazy dog while seven wizards "
    "mix quartz pyx jugs with vexing daft zebras under pale moon light "
    "data base query engine index tree path node edge label scale "
    "merge sort hash join scan page buffer cache disk memory stream"
).split()

FIRST_NAMES = (
    "Ada Alan Barbara Carl Dana Edgar Fred Grace Hector Irene Jim Karen "
    "Leslie Michael Nina Oscar Peter Quinn Rosa Sam Tina Ulf Vera Walter"
).split()

LAST_NAMES = (
    "Anderson Brown Chen Davis Evans Fischer Garcia Hoffman Ito Jansen "
    "Kumar Lopez Miller Novak Olsen Petrov Quist Rossi Schmidt Tanaka "
    "Ullman Varga Weber Xu Young Zhang"
).split()


@dataclass
class GeneratedCorpus:
    """The output of a generator: XML text plus provenance."""

    name: str
    xml: str
    scale: int
    seed: int

    @property
    def megabytes(self) -> float:
        return len(self.xml.encode("utf-8")) / 1e6


@dataclass(frozen=True)
class CorpusInfo:
    """Registry entry: how to generate a corpus and what the paper measured.

    ``paper_tree_nodes`` and the two compression ratios are Figure 6's
    |V^T| and |E^M|/|E^T| columns ("-" = tags ignored, "+" = all tags),
    recorded here so EXPERIMENTS.md can print paper-vs-measured side by side.
    """

    name: str
    description: str
    generate: Callable[[int, int], GeneratedCorpus]
    default_scale: int
    paper_size_mb: float | None = None
    paper_tree_nodes: int | None = None
    paper_ratio_minus: float | None = None
    paper_ratio_plus: float | None = None


class XMLBuilder:
    """Append-only XML text builder (escaping handled, tags balanced)."""

    __slots__ = ("_parts", "_stack")

    def __init__(self) -> None:
        self._parts: list[str] = ['<?xml version="1.0" encoding="UTF-8"?>\n']
        self._stack: list[str] = []

    def open(self, tag: str) -> "XMLBuilder":
        self._parts.append(f"<{tag}>")
        self._stack.append(tag)
        return self

    def close(self) -> "XMLBuilder":
        if not self._stack:
            raise CorpusError("close() with no open element")
        self._parts.append(f"</{self._stack.pop()}>")
        return self

    def text(self, data: str) -> "XMLBuilder":
        self._parts.append(escape_text(data))
        return self

    def leaf(self, tag: str, data: str = "") -> "XMLBuilder":
        if data:
            self._parts.append(f"<{tag}>{escape_text(data)}</{tag}>")
        else:
            self._parts.append(f"<{tag}/>")
        return self

    def newline(self) -> "XMLBuilder":
        self._parts.append("\n")
        return self

    def result(self) -> str:
        if self._stack:
            raise CorpusError(f"unclosed elements at result(): {self._stack!r}")
        return "".join(self._parts)


def rng_for(name: str, scale: int, seed: int) -> random.Random:
    """A deterministic RNG stream per (corpus, scale, seed)."""
    return random.Random(f"{name}:{scale}:{seed}")


def sentence(rng: random.Random, words: int) -> str:
    """A filler sentence of ``words`` pool words."""
    return " ".join(rng.choice(WORDS) for _ in range(words))


def person_name(rng: random.Random) -> str:
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def check_scale(scale: int, minimum: int = 1) -> None:
    if scale < minimum:
        raise CorpusError(f"scale must be >= {minimum}, got {scale}")

"""Incremental mutation of registered documents (the live-documents write path).

The read stack (shred once, serve forever) gains a sibling write stack:

* :mod:`repro.mutation.ops` — the mutation vocabulary (``append_child``,
  ``replace_subtree``, ``delete_subtree``) addressed by tree paths of
  element-child ordinals, with one wire/JSON shape shared by the HTTP
  route, the CLI, the journal and the Python API;
* :mod:`repro.mutation.textedit` — byte-span location and splicing on the
  kept document text, so string-schema reloads and re-shreds stay
  faithful to the mutated document;
* :mod:`repro.mutation.apply` — localized DAG maintenance: privatize the
  spine from the mutation point to the root, shred only the touched
  fragment, graft, and re-bisimulate with
  :func:`repro.compress.minimize.minimize` — O(compressed DAG) instead of
  an O(text) full re-shred — plus incremental
  :class:`repro.compress.stats.DocumentStats` patching.

Persistence (the write-ahead journal and the versioned publish) lives in
:mod:`repro.server.journal` and :meth:`repro.server.catalog.Catalog.mutate`.
"""

from repro.mutation.apply import MutationOutcome, apply_mutations
from repro.mutation.ops import OPS, Mutation, as_mutations

__all__ = ["Mutation", "MutationOutcome", "OPS", "apply_mutations", "as_mutations"]

"""The worker-process half of the pre-forked serving fleet.

:func:`worker_main` is the spawn entry point: a fresh interpreter (the
fleet uses the ``spawn`` start method, so nothing is inherited except the
two queues and a config dict of primitives) builds its **own**
:class:`repro.server.service.QueryService` — own
:class:`~repro.server.pool.InstancePool`, own
:class:`~repro.engine.batch.BatchEvaluator` runs, own GIL — over the
shared on-disk :class:`~repro.server.catalog.Catalog`.

The chunked store is the replication channel: a worker *assembles* its
resident masters from the document's shredded chunks (or re-scans the
kept text for string schemas), exactly like the single-process server.
No instance ever crosses the process boundary — requests and responses
are tuples of primitives, so there is no pickling of engine state, no
shared memory, and a worker crash can never corrupt a sibling.

Wire protocol (multiprocessing queues, all values picklable primitives):

* requests  — ``("query", id, document, query_text, paths, limit,
  deadline_at, trace, doc_version)`` (``deadline_at`` an absolute
  ``time.monotonic`` stamp or ``None`` — the monotonic clock is
  machine-wide, so the instant means the same thing here; ``trace`` the
  request's trace ID or ``None``, echoed in the payload; ``doc_version``
  the document version the dispatcher routed against — a worker whose
  manifest view is older refreshes before serving, so a mutation is
  never answered from a stale master fleet-wide), ``("stats", id)``,
  ``("ping", id)``, ``("evict", id, document)``, ``("shutdown",)``;
* responses — ``(id, "ok", payload)`` or ``(id, "error", kind, message)``
  where ``kind`` names the error family (see :data:`ERROR_KINDS`) so the
  dispatcher re-raises the *same* exception type the in-process service
  would have raised — HTTP status mapping is identical at any worker
  count.

A worker runs a small pool of threads over its request queue, so
concurrent requests for one ``(document, schema)`` shard still coalesce
into shared batches inside its ``QueryService`` (the dispatcher's shard
affinity guarantees all requests for a key land here).  Documents
registered by the front-end *after* the worker spawned are picked up
lazily: an unknown-document miss triggers one :meth:`Catalog.refresh`
retry before the error is returned.
"""

from __future__ import annotations

import os
import threading
import time

# The error families crossing the process boundary are defined once, in
# the shared envelope module, so the worker wire protocol and the HTTP
# error envelope can never disagree on a kind string.  Re-exported here
# because this module *is* the wire protocol's home for fleet code.
from repro.api.envelope import ERROR_KINDS, error_kind, rebuild_error  # noqa: F401
from repro.errors import CatalogError, ClusterError
from repro.server.resilience import FAULTS, Deadline

SHUTDOWN = ("shutdown",)


def _serve_one(service, message, response_queue) -> None:
    """Handle one request tuple; every outcome becomes exactly one response."""
    kind = message[0]
    request_id = message[1]
    try:
        FAULTS.fire("worker.serve", kind=kind)
        if kind == "query":
            _, _, document, query_text, paths, limit, deadline_at, trace, doc_version = message
            # Time queued in the request pipe counted against the budget;
            # answer dead-on-arrival requests without touching the service.
            deadline = Deadline.from_wire(deadline_at)
            if deadline is not None:
                deadline.check("request (expired in the worker's queue)")
            # Lazy version reconciliation: the dispatcher stamped the
            # version it routed against; if this worker's manifest view is
            # older (a mutation published since its last refresh), one
            # re-read + eviction brings it current before serving.
            if doc_version:
                try:
                    known = service.catalog.entry(document).doc_version
                except CatalogError:
                    known = -1
                if known < doc_version:
                    service.catalog.refresh()
                    service.evict(document)
            try:
                payload = service.query(
                    document, query_text, paths=paths, limit=limit,
                    deadline=deadline, trace=trace,
                )
            except CatalogError:
                # The front-end may have registered the document after this
                # worker spawned; one manifest re-read settles it.
                service.catalog.refresh()
                payload = service.query(
                    document, query_text, paths=paths, limit=limit,
                    deadline=deadline, trace=trace,
                )
        elif kind == "stats":
            if service.catalog.quarantined():
                # A repair/re-register in another process lifts quarantine
                # via a fresh manifest stamp; re-read before reporting so
                # health probes see recovery, not a stale verdict.
                service.catalog.refresh()
            payload = service.stats_dict()
            payload["resident"] = [
                [document, list(strings)] for document, strings in service.resident_keys()
            ]
            payload["pid"] = os.getpid()
        elif kind == "ping":
            payload = {"pid": os.getpid()}
        elif kind == "evict":
            _, _, document = message
            evicted = service.evict(document)
            service.catalog.refresh()
            payload = {"evicted": evicted}
        else:
            raise ClusterError(f"unknown worker request kind {kind!r}")
    except BaseException as error:  # noqa: BLE001 - every outcome must answer
        response_queue.put((request_id, "error", error_kind(error), str(error)))
    else:
        response_queue.put((request_id, "ok", payload))


def worker_main(worker_id: int, catalog_dir: str, request_queue, response_queue, config: dict):
    """Run one worker until a shutdown sentinel arrives (spawn entry point).

    ``config`` carries the service knobs as primitives: ``mode``,
    ``window``, ``max_batch``, ``pool_capacity``, ``axes``, ``threads``,
    and optionally ``faults`` — a primitives-only injection spec this
    spawned process arms its own :data:`FAULTS` from (the chaos suite's
    only channel into worker internals).
    """
    # Imported here so the spawn interpreter pays for the engine exactly
    # once, after the process exists (keeps module import light for the
    # dispatcher side, which only needs the protocol helpers above).
    from repro.server.catalog import Catalog
    from repro.server.service import QueryService

    if config.get("faults"):
        FAULTS.arm_from_spec(config["faults"])

    service = QueryService(
        # Readers never replay the journal: N workers re-applying the same
        # intent would race each other's staging renames; the dispatching
        # front-end (the single writer) replays at its own startup.
        Catalog(catalog_dir, journal_replay=False),
        mode=config.get("mode", "snapshot"),
        window=config.get("window", 0.0),
        max_batch=config.get("max_batch", 64),
        pool_capacity=config.get("pool_capacity", 8),
        axes=config.get("axes", "functional"),
    )
    threads = max(1, int(config.get("threads", 4)))

    # Orphan watchdog: if the dispatcher dies without draining (SIGKILL,
    # OOM), this process would otherwise block on the request queue
    # forever.  Re-parenting to init is the detectable signal.
    parent = os.getppid()

    def watch_parent() -> None:
        while True:
            time.sleep(1.0)
            if os.getppid() != parent:
                os._exit(0)

    threading.Thread(target=watch_parent, daemon=True, name="parent-watch").start()

    def loop() -> None:
        while True:
            message = request_queue.get()
            if message == SHUTDOWN:
                # Re-post so sibling threads drain and exit too.
                request_queue.put(SHUTDOWN)
                return
            _serve_one(service, message, response_queue)

    workers = [threading.Thread(target=loop, daemon=True) for _ in range(threads - 1)]
    for thread in workers:
        thread.start()
    loop()
    for thread in workers:
        thread.join()

#!/usr/bin/env python
"""Optimized vs. unoptimized plan execution: the optimizer's perf gate.

Runs the Figure 7 query mix (Q1-Q5, Appendix A style) plus three
empty-branch probes over treebank and XMark, and times each query two
ways **on the same loaded instance**:

* **unoptimized** — the compiled algebra exactly as the parser produced
  it, evaluated without the runtime short-circuit;
* **optimized** — the plan after the cost-based rewrite pass
  (:mod:`repro.xpath.optimizer`) against the document's shred-time
  statistics catalog, evaluated with the short-circuit enabled — i.e.
  exactly what :class:`repro.server.service.QueryService` executes.

Every pair is checked **byte-identical** first (DAG vertex count, exact
tree-node count, and — for selections small enough to decode — the full
sorted path sets); a mismatch fails the run outright, since a faster
wrong answer is worthless.  The headline is the geometric-mean speedup
across all (corpus, query) pairs, gated at ``--min-speedup`` (default
1.0 full: the optimizer must never make the mix slower; 0.9 ``--quick``,
where sub-millisecond timings are noisy).

Statistics come from a real catalog shred (complete tag universe), so the
bench exercises the same fold/reorder decisions production serves.

Usage::

    PYTHONPATH=src python benchmarks/bench_optimizer.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from corpus_cache import cached_xml
from repro.bench.queries import queries_for
from repro.corpora.registry import CORPORA
from repro.engine.evaluator import CompressedEvaluator
from repro.engine.pipeline import load_for_query
from repro.server.catalog import Catalog
from repro.xpath.compiler import compile_query
from repro.xpath.optimizer import optimize

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

CORPUS_NAMES = ("treebank", "xmark")

#: The decoded-path comparison is skipped above this many tree nodes
#: (counts are still compared exactly; decoding 10^6 paths just times the
#: decoder, not the optimizer).
_PATH_CHECK_CAP = 50_000

#: Empty-branch probes appended to every corpus's Figure 7 mix: an absent
#: tag alone, under a downward chain, and inside a predicate — the shapes
#: fold-empty-set / propagate-empty / short-circuit are built for.
def probe_queries(corpus: str) -> dict[str, str]:
    anchor = {"treebank": "VP", "xmark": "item"}[corpus]
    return {
        "E1": "//zzzabsent",
        "E2": "//zzzabsent/*",
        "E3": f"//{anchor}[child::zzzabsent]",
    }


def corpus_xml(name: str, quick: bool) -> str:
    info = CORPORA[name]
    scale = max(1, int(info.default_scale * (0.1 if quick else 0.5)))
    return cached_xml(name, lambda: info.generate(scale, 0).xml, scale=scale, seed=0)


def best_time(run, repeats: int, loops: int) -> float:
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(loops):
            run()
        elapsed = (time.perf_counter() - started) / loops
        if elapsed < best:
            best = elapsed
    return best


def calibrate_loops(run, target_seconds: float) -> int:
    once = time.perf_counter()
    run()
    once = time.perf_counter() - once
    if once <= 0:
        return 10
    return max(1, min(50, int(target_seconds / once)))


def payload(instance, expr, short_circuit: bool, decode_paths: bool):
    evaluator = CompressedEvaluator(
        instance, copy=True, short_circuit=short_circuit
    )
    result = evaluator.evaluate(expr)
    identity = {
        "dag_count": result.dag_count(),
        "tree_count": result.tree_count(),
    }
    if decode_paths and identity["tree_count"] <= _PATH_CHECK_CAP:
        identity["paths"] = sorted(result.tree_paths())
    return identity


def measure(corpus: str, quick: bool) -> tuple[list[dict], int]:
    xml = corpus_xml(corpus, quick)
    with tempfile.TemporaryDirectory() as scratch:
        catalog = Catalog(os.path.join(scratch, "cat"))
        catalog.add(corpus, xml)
        stats = catalog.document_stats(corpus)
    assert stats is not None, "catalog shred must produce statistics"

    rows = []
    checked = 0
    repeats = 2 if quick else 3
    target = 0.05 if quick else 0.25
    mix = dict(queries_for(corpus))
    mix.update(probe_queries(corpus))
    for query_id, query_text in mix.items():
        instance = load_for_query(xml, query_text).instance
        expr = compile_query(query_text)
        optimization = optimize(expr, stats)

        plain = payload(instance, expr, short_circuit=False, decode_paths=True)
        tuned = payload(
            instance, optimization.expr, short_circuit=True, decode_paths=True
        )
        if plain != tuned:
            raise AssertionError(
                f"{corpus} {query_id}: optimized payload differs: "
                f"{tuned} != {plain}"
            )
        checked += 1

        def run_plain():
            CompressedEvaluator(instance, copy=True).evaluate(expr)

        def run_tuned():
            CompressedEvaluator(
                instance, copy=True, short_circuit=True
            ).evaluate(optimization.expr)

        loops = calibrate_loops(run_plain, target)
        plain_s = best_time(run_plain, repeats, loops)
        tuned_s = best_time(run_tuned, repeats, loops)
        speedup = plain_s / tuned_s if tuned_s > 0 else math.inf
        rows.append(
            {
                "corpus": corpus,
                "query_id": query_id,
                "query": query_text,
                "unoptimized_s": plain_s,
                "optimized_s": tuned_s,
                "speedup": speedup,
                "rules_applied": list(optimization.rules_applied),
                "dag_count": plain["dag_count"],
                "tree_count": str(plain["tree_count"]),
            }
        )
        print(
            f"  {corpus:10s} {query_id}: {plain_s * 1e3:8.3f} ms -> "
            f"{tuned_s * 1e3:8.3f} ms  ({speedup:5.2f}x)  "
            f"rules={','.join(optimization.rules_applied) or '-'}"
        )
    return rows, checked


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small corpora (CI smoke)")
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail below this geomean (default 1.0 full, 0.9 quick)",
    )
    parser.add_argument(
        "-o", "--output",
        default=os.path.join(REPO_ROOT, "BENCH_optimizer.json"),
        help="report path (default: BENCH_optimizer.json at the repo root)",
    )
    args = parser.parse_args(argv)
    floor = args.min_speedup if args.min_speedup is not None else (0.9 if args.quick else 1.0)

    all_rows: list[dict] = []
    checked_total = 0
    for corpus in CORPUS_NAMES:
        print(f"{corpus} ({'quick' if args.quick else 'full'}):")
        rows, checked = measure(corpus, args.quick)
        all_rows.extend(rows)
        checked_total += checked

    geomean = math.exp(
        sum(math.log(row["speedup"]) for row in all_rows) / len(all_rows)
    )
    report = {
        "benchmark": "optimizer",
        "quick": args.quick,
        "geomean_speedup": geomean,
        "min_speedup_required": floor,
        "byte_identical": True,  # a mismatch raises before we get here
        "checked_byte_identical_total": checked_total,
        "rows": all_rows,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\ngeomean speedup {geomean:.3f}x over {len(all_rows)} queries "
          f"({checked_total} byte-identity checks) -> {args.output}")
    if geomean < floor:
        print(f"FAIL: geomean {geomean:.3f} below required {floor:.3f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Tests for the repro command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def bib_file(tmp_path):
    from tests.skeleton.test_loader import BIB_XML

    path = tmp_path / "bib.xml"
    path.write_text(BIB_XML, encoding="utf-8")
    return str(path)


class TestCorpora:
    def test_lists_all(self, capsys):
        assert main(["corpora"]) == 0
        out = capsys.readouterr().out
        for name in ("dblp", "swissprot", "treebank", "baseball"):
            assert name in out


class TestGen:
    def test_writes_to_stdout(self, capsys):
        assert main(["gen", "tpcd", "--scale", "5"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<?xml")
        assert "<table>" in out

    def test_writes_to_file(self, tmp_path, capsys):
        target = tmp_path / "out.xml"
        assert main(["gen", "baseball", "--scale", "2", "-o", str(target)]) == 0
        assert target.read_text(encoding="utf-8").startswith("<?xml")
        assert "wrote" in capsys.readouterr().err

    def test_unknown_corpus_fails(self, capsys):
        assert main(["gen", "nosuch"]) == 2
        assert "unknown corpus" in capsys.readouterr().err


class TestCompress:
    def test_stats_output(self, bib_file, capsys):
        assert main(["compress", bib_file]) == 0
        out = capsys.readouterr().out
        assert "|V^T|: 13" in out
        assert "ratio" in out

    def test_tags_none(self, bib_file, capsys):
        assert main(["compress", bib_file, "--tags", "none"]) == 0

    def test_tag_list(self, bib_file, capsys):
        assert main(["compress", bib_file, "--tags", "book,author"]) == 0

    def test_dot_flag(self, bib_file, capsys):
        assert main(["compress", bib_file, "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["compress", "/nonexistent.xml"]) == 2
        assert "error: file not found: /nonexistent.xml" in capsys.readouterr().err


class TestQuery:
    def test_counts(self, bib_file, capsys):
        assert main(["query", bib_file, "//author"]) == 0
        out = capsys.readouterr().out
        assert "selected tree nodes : 5" in out

    def test_paths_printed(self, bib_file, capsys):
        assert main(["query", bib_file, "//book/author", "--paths", "3"]) == 0
        out = capsys.readouterr().out
        assert "1.1.2" in out

    def test_inplace_axes(self, bib_file, capsys):
        assert main(["query", bib_file, "//author", "--axes", "inplace"]) == 0
        assert "selected tree nodes : 5" in capsys.readouterr().out

    def test_bad_query_fails(self, bib_file, capsys):
        assert main(["query", bib_file, "//a[["]) == 2
        assert "error: invalid query:" in capsys.readouterr().err

    def test_no_queries_fails(self, bib_file, capsys):
        assert main(["query", bib_file]) == 2
        assert "no queries" in capsys.readouterr().err

    def test_paths_bounded_work(self, tmp_path, capsys):
        # Regression: --paths N used to materialise up to --limit full edge
        # paths before slicing; with a limit smaller than the tree that
        # raised DecompressionLimitError even though only 2 paths were
        # requested. The lazy islice path stops after N matches.
        from repro.corpora.binary_tree import generate_xml

        path = tmp_path / "deep.xml"
        path.write_text(generate_xml(depth=8).xml, encoding="utf-8")
        assert main(["query", str(path), "//a", "--paths", "2", "--limit", "20"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n  ") == 2  # exactly two path lines printed


class TestQueryBatch:
    def test_multiple_xpaths_batched(self, bib_file, capsys):
        assert main(["query", bib_file, "//author", "//title"]) == 0
        out = capsys.readouterr().out
        assert "batch               : 2 queries" in out
        assert "shared work" in out
        assert "--- //author" in out and "--- //title" in out
        assert "selected tree nodes : 5" in out  # //author
        assert "selected tree nodes : 3" in out  # //title

    def test_workload_file(self, bib_file, tmp_path, capsys):
        workload = tmp_path / "mix.txt"
        workload.write_text(
            "# the bib mix\n//author\n\n//book/title\n", encoding="utf-8"
        )
        assert main(["query", bib_file, "--workload", str(workload)]) == 0
        out = capsys.readouterr().out
        assert "batch               : 2 queries" in out
        assert "--- //book/title" in out

    def test_positional_plus_workload(self, bib_file, tmp_path, capsys):
        workload = tmp_path / "mix.txt"
        workload.write_text("//title\n", encoding="utf-8")
        assert main(["query", bib_file, "//author", "--workload", str(workload)]) == 0
        assert "batch               : 2 queries" in capsys.readouterr().out

    def test_batch_matches_single_runs(self, bib_file, capsys):
        assert main(["query", bib_file, "//author", "//paper"]) == 0
        batched = capsys.readouterr().out
        assert main(["query", bib_file, "//author"]) == 0
        single = capsys.readouterr().out
        for line in single.splitlines():
            if line.startswith("selected"):
                assert line in batched

    def test_batch_paths_printed_per_query(self, bib_file, capsys):
        assert main(["query", bib_file, "//book/author", "//paper", "--paths", "1"]) == 0
        out = capsys.readouterr().out
        assert "1.1.2" in out  # first book author

    def test_batch_on_saved_dag(self, bib_file, tmp_path, capsys):
        dag = str(tmp_path / "bib.dag")
        assert main(["compress", bib_file, "--save", dag]) == 0
        capsys.readouterr()
        assert main(["query", dag, "//author", "//title"]) == 0
        out = capsys.readouterr().out
        assert "batch               : 2 queries" in out


class TestSavedInstances:
    def test_compress_save_then_query_dag(self, bib_file, tmp_path, capsys):
        dag = str(tmp_path / "bib.dag")
        assert main(["compress", bib_file, "--save", dag]) == 0
        capsys.readouterr()
        assert main(["query", dag, "//author"]) == 0
        out = capsys.readouterr().out
        assert "selected tree nodes : 5" in out
        assert "parse+compress time : 0.000s" in out  # no XML re-parse

    def test_compress_with_string_sets(self, bib_file, tmp_path, capsys):
        dag = str(tmp_path / "bib.dag")
        assert main(["compress", bib_file, "--string", "Codd", "--save", dag]) == 0
        capsys.readouterr()
        assert main(["query", dag, '//paper[author["Codd"]]']) == 0
        assert "selected tree nodes : 1" in capsys.readouterr().out


class TestExitCodes:
    """Regression tests: 2 = bad invocation/input, 1 = engine failure.

    Before PR 3 missing files, malformed queries and unknown corpora all
    exited 1 (mixed with runtime errors) with inconsistent stderr wording.
    """

    def test_workload_file_absent(self, bib_file, capsys):
        assert main(["query", bib_file, "--workload", "/no/such/mix.txt"]) == 2
        assert "error: file not found: /no/such/mix.txt" in capsys.readouterr().err

    def test_malformed_xpath_in_batch(self, bib_file, capsys):
        assert main(["query", bib_file, "//author", "//b[["]) == 2
        assert "error: invalid query:" in capsys.readouterr().err

    def test_unknown_catalog_document(self, tmp_path, capsys):
        catalog = str(tmp_path / "cat")
        assert main(["catalog", "evict", "ghost", "-C", catalog]) == 2
        assert "error: unknown catalog document 'ghost'" in capsys.readouterr().err

    def test_query_input_file_absent(self, capsys):
        assert main(["query", "/no/such/doc.xml", "//a"]) == 2
        assert "error: file not found: /no/such/doc.xml" in capsys.readouterr().err

    def test_input_file_is_directory(self, tmp_path, capsys):
        assert main(["compress", str(tmp_path)]) == 2
        assert "expected a file" in capsys.readouterr().err

    def test_all_errors_are_single_stderr_lines(self, bib_file, capsys):
        for argv in (
            ["gen", "nosuch"],
            ["compress", "/nonexistent.xml"],
            ["query", bib_file, "//a[["],
        ):
            assert main(argv) == 2
            err = capsys.readouterr().err.strip()
            assert err.startswith("error: ") and "\n" not in err


class TestCatalogCLI:
    def test_add_ls_evict_round_trip(self, bib_file, tmp_path, capsys):
        catalog = str(tmp_path / "cat")
        assert main(["catalog", "add", "bib", bib_file, "-C", catalog]) == 0
        out = capsys.readouterr().out
        assert "added bib" in out and "chunk(s)" in out

        assert main(["catalog", "ls", "-C", catalog]) == 0
        assert "bib" in capsys.readouterr().out

        assert main(["catalog", "evict", "bib", "-C", catalog]) == 0
        capsys.readouterr()
        assert main(["catalog", "ls", "-C", catalog]) == 0
        assert "empty" in capsys.readouterr().out

    def test_duplicate_add_fails(self, bib_file, tmp_path, capsys):
        catalog = str(tmp_path / "cat")
        assert main(["catalog", "add", "bib", bib_file, "-C", catalog]) == 0
        capsys.readouterr()
        assert main(["catalog", "add", "bib", bib_file, "-C", catalog]) == 2
        assert "already in the catalog" in capsys.readouterr().err

    def test_add_missing_file(self, tmp_path, capsys):
        assert main(["catalog", "add", "x", "/no/such.xml", "-C", str(tmp_path / "c")]) == 2
        assert "file not found" in capsys.readouterr().err

    def test_invalid_name_rejected(self, bib_file, tmp_path, capsys):
        code = main(["catalog", "add", "../escape", bib_file, "-C", str(tmp_path / "c")])
        assert code == 2
        assert "invalid document name" in capsys.readouterr().err


class TestServeParser:
    def test_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.mode == "snapshot"
        assert args.window_ms == 0.0
        assert args.pool_size == 8
        assert args.catalog == "repro-catalog"
        assert args.workers is None  # resolved to one per CPU at run time
        assert args.worker_threads == 4
        assert args.stats_interval == 0.0

    def test_fleet_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--workers", "4", "--worker-threads", "2", "--stats-interval", "5"]
        )
        assert args.workers == 4
        assert args.worker_threads == 2
        assert args.stats_interval == 5.0

    def test_negative_workers_rejected(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["serve", "--workers", "-1", "-C", str(tmp_path / "cat")])
        assert code == 2
        assert "--workers must be >= 0" in capsys.readouterr().err


class TestExplain:
    def test_plan_rendered(self, capsys):
        assert main(["explain", "//a/b"]) == 0
        out = capsys.readouterr().out
        assert "descendant" in out and "L[a]" in out

    def test_upward_only_noted(self, capsys):
        assert main(["explain", "/self::*[a/b]"]) == 0
        assert "Corollary 3.7" in capsys.readouterr().out

    def test_file_plan_is_annotated(self, tmp_path, capsys):
        doc = tmp_path / "doc.xml"
        doc.write_text("<a><b><c/></b><b/></a>")
        assert main(["explain", "--file", str(doc), "//b/c"]) == 0
        out = capsys.readouterr().out
        assert "[est=" in out
        assert "rewrites:" in out

    def test_analyze_attaches_actuals(self, tmp_path, capsys):
        doc = tmp_path / "doc.xml"
        doc.write_text("<a><b><c/></b><b/></a>")
        assert main(["explain", "--file", str(doc), "--analyze", "--json", "//b/c"]) == 0
        import json as json_module

        payload = json_module.loads(capsys.readouterr().out)
        assert payload["algebra"]["actual"]["tree_count"] == 1
        assert "optimizer" in payload

    def test_analyze_without_file_is_usage_error(self, capsys):
        assert main(["explain", "--analyze", "//a"]) == 2
        assert "--analyze needs --file" in capsys.readouterr().err


class TestServeValidation:
    def test_zero_worker_threads_rejected(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["serve", "--worker-threads", "0", "-C", str(tmp_path / "cat")])
        assert code == 2
        assert "--worker-threads must be >= 1" in capsys.readouterr().err

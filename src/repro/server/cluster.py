"""Sharded multi-process serving: a pre-forked worker fleet + dispatcher.

PR 3's single-process server keeps compressed masters resident and
coalesces concurrent requests, but every mask-plane evaluation still
contends on one GIL — aggregate throughput stops scaling past ~1 core.
The fleet shards the work the way path-partitioned stores do: each
**worker process** (:mod:`repro.server.worker`) owns its own
``InstancePool``/``BatchEvaluator`` and answers only the shards routed to
it, so N workers evaluate on N cores with no shared interpreter state.

Design points:

* **Spawn-safe replication via the chunk store.**  Workers are started
  with the ``spawn`` method and receive only the catalog *directory*;
  they assemble their resident masters from the shredded chunks on disk
  (or re-scan the kept text for string schemas).  Instances are never
  pickled across the boundary — the on-disk store is the IPC-free
  replication channel, so worker startup cost is one warm assemble per
  resident key, independent of front-end state.

* **Rendezvous (HRW) routing = shard affinity.**  Each request is routed
  by the highest ``blake2b(worker slot | document | string-schema)``
  score over the fleet, so a given ``(document, string-schema)`` master
  is resident in **exactly one** worker: PR 3's micro-batch coalescing
  and persistent-mode reuse keep working per shard, memory is not
  duplicated N ways, and adding/removing a slot only remaps the keys
  that hashed to it.  A respawned worker keeps its slot id, so affinity
  survives crashes.

* **Crash containment.**  A monitor thread health-checks the fleet;
  when a worker dies (``kill -9`` included) its in-flight requests fail
  with :class:`~repro.errors.WorkerUnavailableError` — mapped to HTTP
  503, never a hang or a wrong answer — and the worker is respawned on
  fresh queues.  Subsequent requests for the shard hit the respawned
  worker, which re-assembles its masters from disk.

* **Graceful drain.**  :meth:`WorkerFleet.close` sends a shutdown
  sentinel to every worker, lets them finish queued work, joins with a
  deadline, and only then escalates to ``terminate``/``kill``.

:class:`WorkerFleet` exposes the same surface as the in-process
:class:`~repro.server.service.QueryService` (``query`` / ``stats_dict``
/ ``evict`` / ``catalog`` / ``mode`` / ``request_timeout`` / ``close`` /
``wait_ready``), so the HTTP front-end treats ``--workers N`` and
``--workers 0`` identically.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import multiprocessing
import os
import queue as stdlib_queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError

from repro.errors import ClusterError, DeadlineExceededError, WorkerUnavailableError
from repro.server.catalog import Catalog
from repro.server.resilience import FAULTS, AdmissionController, CircuitBreaker, Deadline
from repro.server.service import DEFAULT_LIMIT, CompiledQueryCache, kernel_info
from repro.server.worker import SHUTDOWN, rebuild_error, worker_main

#: Request kinds counted in dispatched/completed/failed — real work, not
#: the fleet's own control traffic (pings, stats probes).
_WORK_KINDS = frozenset({"query", "evict"})


#: Keys in worker stats payloads that are levels, not counters: a merge
#: keeps the live value instead of summing across incarnations.
_GAUGE_KEYS = frozenset({"capacity", "resident", "le"})


def _fold_stats(carried, live):
    """``live`` + ``carried`` with counter semantics, recursively.

    Numeric leaves add (they are counters: requests, hits, misses, bucket
    counts...), except known gauge keys which keep the live level and
    ``max_batch_size`` which takes the max.  Shapes that do not line up
    fall back to the live value — worker payloads evolve, and a merge
    must never be the thing that breaks /stats.
    """
    if carried is None:
        return live
    if live is None:
        return carried
    if isinstance(carried, dict) and isinstance(live, dict):
        merged = {}
        for key in set(carried) | set(live):
            if key in _GAUGE_KEYS:
                merged[key] = live.get(key, carried.get(key))
            elif key == "max_batch_size":
                merged[key] = max(carried.get(key, 0), live.get(key, 0))
            else:
                merged[key] = _fold_stats(carried.get(key), live.get(key))
        return merged
    if isinstance(carried, list) and isinstance(live, list) and len(carried) == len(live):
        return [_fold_stats(one, other) for one, other in zip(carried, live)]
    if isinstance(carried, (int, float)) and isinstance(live, (int, float)):
        return carried + live
    return live


def default_worker_count() -> int:
    """The ``--workers`` default: one per CPU the process may use."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class _WorkerSlot:
    """One stable shard slot: a worker process and its plumbing.

    The slot *id* is what rendezvous hashing scores, so it survives
    respawns; the process, queues, pump thread, and in-flight map are
    per-incarnation and replaced wholesale on crash (a killed process can
    leave a queue in an unusable state, so queues are never reused).
    """

    __slots__ = (
        "id",
        "lock",
        "process",
        "request_queue",
        "response_queue",
        "inflight",
        "pump",
        "stop_pump",
        "generation",
        "dispatched",
        "completed",
        "failed",
        "last_spawn",
        "strikes",
        "respawn_at",
        "breaker",
        "carried",
        "last_probe",
        "last_probe_generation",
    )

    def __init__(self, slot_id: int, breaker: CircuitBreaker):
        self.id = slot_id
        #: Route-around state: opens after consecutive shard failures.
        self.breaker = breaker
        self.lock = threading.Lock()
        self.process = None
        self.request_queue = None
        self.response_queue = None
        #: request id -> (Future, kind), everything handed to this incarnation.
        self.inflight: dict[int, tuple[Future, str]] = {}
        self.pump: threading.Thread | None = None
        self.stop_pump: threading.Event | None = None
        self.generation = 0
        self.dispatched = 0
        self.completed = 0
        self.failed = 0
        #: Crash-loop backoff state: when the incarnation started, how many
        #: consecutive times it died young, and when the next spawn is due.
        self.last_spawn = 0.0
        self.strikes = 0
        self.respawn_at = 0.0
        #: Dead incarnations' folded service/pool counters: a respawn resets
        #: the worker's own numbers to zero, so /stats merges this back in
        #: to keep per-worker counters monotone across crashes.
        self.carried: dict | None = None
        #: The freshest stats probe of the *current* incarnation (folded
        #: into ``carried`` when it dies) and the generation it belongs to.
        self.last_probe: dict | None = None
        self.last_probe_generation = 0


class WorkerFleet:
    """Dispatcher over N pre-forked workers; the ``--workers N`` service."""

    def __init__(
        self,
        catalog: Catalog,
        workers: int | None = None,
        mode: str = "snapshot",
        window: float = 0.0,
        max_batch: int = 64,
        pool_capacity: int = 8,
        axes: str = "functional",
        request_timeout: float = 120.0,
        worker_threads: int = 4,
        health_interval: float = 0.25,
        drain_timeout: float = 10.0,
        max_queue: int = 0,
        rate_limit: float = 0.0,
        degraded_shed_rate: float = 1.0,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 2.0,
        young_death_window: float = 2.0,
        backoff_healthy_window: float = 30.0,
        faults: dict | None = None,
    ):
        count = default_worker_count() if workers is None else int(workers)
        if count < 1:
            raise ClusterError(f"worker fleet needs >= 1 worker, got {count}")
        self.catalog = catalog
        self.mode = mode
        self.request_timeout = request_timeout
        self.health_interval = health_interval
        self.drain_timeout = drain_timeout
        self.workers = count
        #: A worker that dies within this many seconds of spawning earns a
        #: crash-loop strike.
        self.young_death_window = young_death_window
        #: A worker alive this long has proven itself: its strikes reset,
        #: so the *next* crash starts from a clean backoff schedule.
        self.backoff_healthy_window = backoff_healthy_window
        self.admission = AdmissionController(max_queue=max_queue, rate_limit=rate_limit)
        self.degraded_shed_rate = degraded_shed_rate
        self._config = {
            "mode": mode,
            "window": window,
            "max_batch": max_batch,
            "pool_capacity": pool_capacity,
            "axes": axes,
            "threads": worker_threads,
            # Primitives-only fault spec; each spawned worker arms its own
            # process-local injector from it (the chaos suite's channel for
            # injecting faults *inside* workers).
            "faults": faults,
        }
        self._context = multiprocessing.get_context("spawn")
        self._compiled = CompiledQueryCache()
        # Dispatcher-side optimized plans (explain/measure share objects so
        # identity-keyed actuals attach); registration stamps in the keys
        # invalidate on re-register, the LRU bound keeps it diagnostic-sized.
        self._optimized: OrderedDict = OrderedDict()
        self._optimized_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closing = threading.Event()
        self._respawns = 0
        self._stats_lock = threading.Lock()
        #: Dispatcher-side mutation counters (writes never reach workers).
        self._mutations: dict = {"applied": 0, "failed": 0, "ops": {}}
        self._slots = [
            _WorkerSlot(
                slot_id,
                CircuitBreaker(threshold=breaker_threshold, cooldown=breaker_cooldown),
            )
            for slot_id in range(count)
        ]
        try:
            for slot in self._slots:
                self._start_worker(slot)
        except BaseException:
            # A partial fleet must not outlive its failed constructor: the
            # caller gets the exception, never a handle to close() with.
            self._closing.set()
            for slot in self._slots:
                if slot.stop_pump is not None:
                    slot.stop_pump.set()
                if slot.process is not None:
                    slot.process.terminate()
                    slot.process.join(timeout=2.0)
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-monitor", daemon=True
        )
        self._monitor.start()

    # -- worker lifecycle ------------------------------------------------

    def _start_worker(self, slot: _WorkerSlot) -> None:
        """(Re)incarnate ``slot``: fresh queues, process, and pump thread."""
        slot.request_queue = self._context.Queue()
        slot.response_queue = self._context.Queue()
        slot.inflight = {}
        slot.stop_pump = threading.Event()
        slot.generation += 1
        slot.process = self._context.Process(
            target=worker_main,
            args=(
                slot.id,
                self.catalog.root,
                slot.request_queue,
                slot.response_queue,
                self._config,
            ),
            name=f"repro-worker-{slot.id}",
            daemon=True,
        )
        slot.process.start()
        slot.last_spawn = time.monotonic()
        slot.pump = threading.Thread(
            target=self._pump_loop,
            args=(slot, slot.response_queue, slot.stop_pump),
            name=f"fleet-pump-{slot.id}",
            daemon=True,
        )
        slot.pump.start()

    def _pump_loop(self, slot: _WorkerSlot, response_queue, stop: threading.Event) -> None:
        """Resolve this incarnation's futures from its response queue."""
        while not stop.is_set():
            try:
                message = response_queue.get(timeout=0.1)
            except stdlib_queue.Empty:
                continue
            except Exception:  # noqa: BLE001 - queue torn down mid-read
                stop.wait(0.05)
                continue
            request_id, status = message[0], message[1]
            with slot.lock:
                entry = slot.inflight.pop(request_id, None)
            if entry is None:  # timed out / failed over already
                continue
            future, kind = entry
            counted = kind in _WORK_KINDS
            if status == "ok":
                if counted:
                    with self._stats_lock:
                        slot.completed += 1
                future.set_result(message[2])
            else:
                if counted:
                    with self._stats_lock:
                        slot.failed += 1
                future.set_exception(rebuild_error(message[2], message[3]))

    def _monitor_loop(self) -> None:
        """Health-check the fleet; fail over and respawn dead workers.

        The loop must survive anything a single pass throws (a respawn's
        ``Process.start()`` can raise under memory/process pressure): a
        dead monitor would silently disable crash detection for the rest
        of the fleet's life, so failures only skip the pass — the slot
        stays dead-but-detected and is retried next tick.
        """
        while not self._closing.wait(self.health_interval):
            for slot in self._slots:
                if self._closing.is_set():
                    return
                try:
                    process = slot.process
                    if process is not None and not process.is_alive():
                        self._handle_crash(slot)
                    elif process is not None:
                        # Sustained-health amnesty: strikes used to persist
                        # until the *next* crash, so a worker that crash-
                        # looped once carried its backoff schedule forever.
                        # A full healthy window wipes the slate.
                        if (
                            slot.strikes
                            and time.monotonic() - slot.last_spawn
                            >= self.backoff_healthy_window
                        ):
                            with slot.lock:
                                if slot.process is process and process.is_alive():
                                    slot.strikes = 0
                    else:
                        # A crash-looping slot waiting out its backoff window.
                        with slot.lock:
                            if (
                                slot.process is None
                                and time.monotonic() >= slot.respawn_at
                                and not self._closing.is_set()
                            ):
                                self._start_worker(slot)
                except Exception:  # noqa: BLE001 - retried on the next tick
                    with slot.lock:
                        if slot.process is not None and not slot.process.is_alive():
                            slot.process = None
                        slot.respawn_at = time.monotonic() + max(
                            0.5, self.health_interval
                        )

    def _handle_crash(self, slot: _WorkerSlot) -> None:
        """Fail over one dead incarnation and respawn it, atomically.

        The whole swap — dooming the in-flight map, stopping the old pump,
        installing fresh queues, starting the new process — happens under
        the slot lock, so a concurrent :meth:`_submit` lands either in the
        old incarnation (and is doomed here) or entirely in the new one;
        a request can never strand half-registered across the swap.
        """
        exitcode = slot.process.exitcode
        with slot.lock:
            slot.stop_pump.set()
            doomed = list(slot.inflight.values())
            slot.inflight = {}
            # Fold the dead incarnation's last-seen service/pool counters
            # into the slot's carry so /stats stays monotone: the respawned
            # worker restarts its own counters from zero, but the shard's
            # reported totals must never go backwards.  (Work done after
            # the last stats probe is lost with the process — the carry is
            # a floor, not an exact ledger.)
            if slot.last_probe is not None and slot.last_probe_generation == slot.generation:
                slot.carried = _fold_stats(slot.carried, slot.last_probe)
            slot.last_probe = None
            # Crash-loop backoff: a worker that died young (within
            # ``young_death_window`` seconds of spawning — e.g. a corrupted
            # catalog killing every startup) earns a strike; after 3 strikes
            # respawns are delayed exponentially up to 5 s so a
            # deterministic startup failure burns backoff waits, not a
            # continuous spawn storm.  The slot keeps retrying forever at
            # the capped interval — an operator sees alive=false + climbing
            # respawns in /stats meanwhile.  Strikes clear on a crash past
            # the young-death window, and (the monitor's amnesty pass) after
            # a sustained ``backoff_healthy_window`` without crashing.
            if time.monotonic() - slot.last_spawn < self.young_death_window:
                slot.strikes += 1
            else:
                slot.strikes = 0
            delay = 0.0 if slot.strikes < 3 else min(5.0, 0.25 * 2 ** (slot.strikes - 3))
            if self._closing.is_set():
                pass
            elif delay == 0.0:
                try:
                    self._start_worker(slot)
                except Exception:  # noqa: BLE001 - spawn failed (EAGAIN/ENOMEM...)
                    # The in-flight futures below must still be failed; leave
                    # the slot dead-but-scheduled and let the monitor retry.
                    slot.process = None
                    slot.respawn_at = time.monotonic() + max(0.5, self.health_interval)
            else:
                slot.process = None  # _submit fails fast while we wait
                slot.respawn_at = time.monotonic() + delay
        slot.breaker.record_failure()  # a crash counts against the shard
        error = WorkerUnavailableError(
            f"worker {slot.id} died (exit code {exitcode}) with the request in "
            f"flight; the shard is respawning — retry"
        )
        with self._stats_lock:
            slot.failed += sum(1 for _, kind in doomed if kind in _WORK_KINDS)
            self._respawns += 1
        for future, _ in doomed:
            if not future.done():
                future.set_exception(error)

    # -- routing ---------------------------------------------------------

    def _ranked_slots(self, document: str, strings: tuple[str, ...]) -> list[_WorkerSlot]:
        """Every slot, best rendezvous score first (the HRW preference list)."""
        if len(self._slots) == 1:
            return list(self._slots)
        key = json.dumps([document, list(strings)]).encode("utf-8")

        def score(slot: _WorkerSlot) -> int:
            digest = hashlib.blake2b(b"%d|" % slot.id + key, digest_size=8).digest()
            return int.from_bytes(digest, "big")

        return sorted(self._slots, key=score, reverse=True)

    def _slot_for(self, document: str, strings: tuple[str, ...]) -> _WorkerSlot:
        """Rendezvous-hash the shard key over the stable slot ids.

        The *primary* slot, ignoring breaker state — used by introspection
        (:meth:`shard_of`, plans) which must not consume half-open probes.
        """
        return self._ranked_slots(document, strings)[0]

    def _route(self, document: str, strings: tuple[str, ...]) -> _WorkerSlot:
        """The slot a query actually goes to: HRW order, breakers respected.

        Walks the preference list and takes the best-scoring slot whose
        circuit breaker admits traffic — so a shard whose worker keeps
        failing is routed around (its keys fail over to their second-choice
        slot, which loads the masters from the shared chunk store) while
        the breaker's half-open probes test for recovery.  If *every*
        breaker is open the primary slot is used anyway: under a fleet-wide
        hiccup a forced probe beats certain failure.
        """
        ranked = self._ranked_slots(document, strings)
        for slot in ranked:
            if slot.breaker.allow():
                return slot
        return ranked[0]

    def shard_of(self, document: str, query_text: str) -> int:
        """The slot id a query for ``document`` routes to (introspection)."""
        _, _, strings = self._compiled.entry(query_text)
        return self._slot_for(document, strings).id

    def _submit(self, slot: _WorkerSlot, message_tail: tuple) -> tuple[int, Future]:
        """Register a future and enqueue ``(kind, id, *tail)`` atomically.

        Registration and enqueue happen under the slot lock so a crash
        handler swapping the incarnation can never strand a future in a
        replaced in-flight map with its request in a dead queue.
        """
        request_id = next(self._ids)
        future: Future = Future()
        kind = message_tail[0]
        counted = kind in _WORK_KINDS
        if self._closing.is_set():
            # close() tears queues down; a late /stats or /query handler
            # thread must get a clean ClusterError, not a queue ValueError.
            raise ClusterError("the worker fleet is shutting down")
        with slot.lock:
            if slot.process is None or not slot.process.is_alive():
                # Died since the monitor's last pass: fail fast (503), the
                # monitor respawns the shard within one health interval.
                # Count both sides so failed never exceeds dispatched.
                if counted:
                    with self._stats_lock:
                        slot.dispatched += 1
                        slot.failed += 1
                raise WorkerUnavailableError(
                    f"worker {slot.id} is down; the shard is respawning — retry"
                )
            slot.inflight[request_id] = (future, kind)
            try:
                slot.request_queue.put((kind, request_id, *message_tail[1:]))
            except Exception as error:  # noqa: BLE001 - queue closed/broken
                slot.inflight.pop(request_id, None)
                raise WorkerUnavailableError(
                    f"worker {slot.id}'s queue is unavailable: {error}"
                ) from error
            if counted:
                # Inside the slot lock: a response cannot be pumped for this
                # request yet, so completed can never overtake dispatched.
                with self._stats_lock:
                    slot.dispatched += 1
        return request_id, future

    def _await(self, slot: _WorkerSlot, request_id: int, future: Future, timeout: float):
        """``future.result`` that un-registers the request on timeout.

        Every timed-out wait — query or control probe — must drop its
        in-flight entry, or a wedged-but-alive worker leaks one entry per
        probe and ``queue_depth`` (the metric that diagnoses exactly that
        condition) reads permanently inflated.
        """
        try:
            return future.result(timeout=timeout)
        except FuturesTimeoutError:
            with slot.lock:
                slot.inflight.pop(request_id, None)
            raise

    # -- the QueryService surface ----------------------------------------

    def query(
        self,
        document: str,
        query_text: str,
        paths: int = 0,
        limit: int = DEFAULT_LIMIT,
        deadline: Deadline | None = None,
        client: str | None = None,
        trace: str | None = None,
    ) -> dict:
        """Route one query to its shard's worker and await the answer.

        Unknown documents and malformed queries fail here, in the
        front-end, exactly as they do in process (404/400 before any IPC);
        a worker crash surfaces as :class:`WorkerUnavailableError` (503).
        ``deadline`` crosses the wire as its absolute monotonic timestamp
        (``CLOCK_MONOTONIC`` is machine-wide, so it means the same instant
        in the worker) — time spent queued in the worker's request pipe
        keeps counting against the budget.  Shard failures feed the slot's
        circuit breaker; admission sheds before any routing work.
        """
        if self._closing.is_set():
            raise ClusterError("the worker fleet is shutting down")
        if deadline is not None:
            deadline.check("request")
        self.admission.admit(client)
        try:
            entry = self.catalog.entry(document)  # raises CatalogError when unknown
            # Full parse+compile (cached), not just the string schema:
            # malformed and uncompilable queries must 400 here, before any
            # IPC, exactly as they do on the --workers 0 path — a bad query
            # never reaches a worker's batch.
            _, _, strings = self._compiled.entry(query_text)
            slot = self._route(document, strings)
            timeout = self.request_timeout
            if deadline is not None:
                timeout = min(timeout, max(deadline.remaining(), 0.0))
            try:
                # Inside the breaker-accounting block: an injected dispatch
                # failure must feed the slot's breaker like a real one.
                FAULTS.fire("cluster.dispatch", worker=slot.id, document=document)
                request_id, future = self._submit(
                    slot,
                    (
                        "query",
                        document,
                        query_text,
                        paths,
                        limit,
                        None if deadline is None else deadline.at,
                        trace,
                        # The version the dispatcher routed against: a worker
                        # whose manifest view is older refreshes before
                        # serving, so post-mutation queries are never
                        # answered from a stale master anywhere in the fleet.
                        entry.doc_version,
                    ),
                )
                payload = self._await(slot, request_id, future, timeout)
            except WorkerUnavailableError:
                slot.breaker.record_failure()
                raise
            except FuturesTimeoutError:
                if deadline is not None and deadline.expired:
                    raise DeadlineExceededError(
                        f"deadline expired before worker {slot.id} answered "
                        f"{query_text!r}"
                    ) from None
                raise
            slot.breaker.record_success()
            payload["worker"] = slot.id
            return payload
        finally:
            self.admission.release()

    def compiled_entry(self, query_text: str):
        """``(expr, tags, strings)`` — the seam ``repro.api`` prepares through."""
        return self._compiled.entry(query_text)

    def seed_compiled(
        self,
        query_text: str,
        expr,
        tags: tuple[str, ...],
        strings: tuple[str, ...],
    ) -> None:
        """Adopt an externally-compiled query into the dispatcher's LRU."""
        self._compiled.seed(query_text, expr, tags, strings)

    def instance_info(self, document: str, strings: tuple[str, ...]) -> dict:
        """Plan provenance under a fleet: shard affinity plus residency.

        The shard id is exact (rendezvous routing is deterministic);
        residency is probed live from that shard's worker with a short
        deadline and reported as ``"unknown"`` when the worker cannot
        answer in time — explain must never block behind a busy shard.
        """
        self.catalog.entry(document)  # raises CatalogError when unknown
        strings = tuple(strings)
        slot = self._slot_for(document, strings)
        info: dict = {
            "source": "worker",
            "mode": self.mode,
            "workers": self.workers,
            "shard": slot.id,
            "strings": list(strings),
            "resident": "unknown",
            # Workers are forks of this process, so the dispatcher's kernel
            # tier is the fleet's (per-worker detail sits in /stats rows).
            "kernel": kernel_info(),
        }
        try:
            request_id, future = self._submit(slot, ("stats",))
            worker_stats = self._await(slot, request_id, future, 2.0)
        except Exception:  # noqa: BLE001 - residency is best-effort provenance
            return info
        resident = worker_stats.get("resident") or []
        info["resident"] = [document, list(strings)] in resident
        return info

    def optimized_entry(self, document: str, query_text: str):
        """The dispatcher-side :class:`OptimizationResult` for a served query.

        Cached per ``(document, registration, query)`` so :meth:`explain`
        and :meth:`measure_plan` hand out the *same* object — actuals are
        keyed by node identity, so the annotated plan and the measured
        trace must share expression nodes (the same contract
        :meth:`repro.server.service.QueryService.optimized_entry` keeps).
        Every publish — re-registration *and* mutation — bumps the entry's
        ``doc_version``, which keys (and so invalidates) the cached plan;
        the registration stamp alone could collide when a name is removed
        and re-added within wall-clock resolution.
        """
        from repro.xpath.optimizer import optimize as optimize_plan

        expr, _, _ = self._compiled.entry(query_text)
        entry = self.catalog.entry(document)
        key = (document, entry.registered_at, entry.doc_version, query_text)
        with self._optimized_lock:
            cached = self._optimized.get(key)
            if cached is not None:
                self._optimized.move_to_end(key)
                return cached
        optimization = optimize_plan(expr, self.catalog.document_stats(document))
        with self._optimized_lock:
            self._optimized[key] = optimization
            self._optimized.move_to_end(key)
            while len(self._optimized) > 256:
                self._optimized.popitem(last=False)
        return optimization

    def explain(self, document: str, query_text: str, analyze: bool = False) -> dict:
        """The structured plan of ``query_text``, fleet provenance attached.

        The plan itself is computed dispatcher-side (the workers rewrite
        against the same persisted catalog statistics, so optimizing here
        reproduces exactly the plan the shard evaluates — no IPC round
        trip); only the residency probe touches the shard's worker.  Same
        payload shape as
        :meth:`repro.server.service.QueryService.explain`.
        """
        from repro.api.plan import Plan

        expr, tags, strings = self._compiled.entry(query_text)
        optimization = self.optimized_entry(document, query_text)
        actuals = self.measure_plan(document, query_text) if analyze else None
        plan = Plan.from_compiled(
            query_text, expr, tags, strings, optimization=optimization, actuals=actuals
        )
        plan.instance = self.instance_info(document, strings)
        payload = {"document": document, "query": query_text, "plan": plan.to_dict()}
        if analyze:
            payload["analyzed"] = True
        return payload

    def measure_plan(self, document: str, query_text: str) -> dict[int, dict]:
        """Per-node actual cardinalities of the served (optimized) plan.

        Same seam :meth:`repro.server.service.QueryService.measure_plan`
        exposes, so :meth:`repro.api.Database.explain` measures through a
        fleet too.  ``analyze`` assembles a *private* instance from the
        shredded chunks in the dispatcher process (the shard's pooled
        master stays untouched — measuring inside a worker would mean
        shipping per-node traces over the wire) and discards it after
        measuring; a diagnostic endpoint pays a cold load, serving traffic
        pays nothing.
        """
        from repro.engine.evaluator import measure_actuals

        _, tags, strings = self._compiled.entry(query_text)
        optimization = self.optimized_entry(document, query_text)
        working = self.catalog.load_instance(document, strings)
        for tag in tags:
            if not working.has_set(tag):
                working.ensure_set(tag)
        return measure_actuals(
            working, optimization.expr, axes=self._config["axes"], copy=False
        )

    def mutate(self, document: str, mutations) -> dict:
        """Apply a mutation batch and invalidate the whole fleet.

        The write happens dispatcher-side (this process owns the catalog
        directory — workers are readers; see
        :meth:`repro.server.catalog.Catalog.mutate` for the journal →
        maintain → publish protocol), then residency is dropped in every
        worker via the evict broadcast.  Workers that miss the broadcast
        (busy, mid-respawn) still converge: every dispatched query carries
        the routed ``doc_version``, and a worker behind it refreshes before
        serving — the broadcast is an optimization, the version stamp is
        the guarantee.
        """
        started = time.monotonic()
        try:
            entry = self.catalog.mutate(document, mutations)
        except Exception:
            with self._stats_lock:
                self._mutations["failed"] += 1
            raise
        evicted = self.evict(document)
        ops: dict[str, int] = {}
        for mutation in mutations:
            op = mutation["op"] if isinstance(mutation, dict) else mutation.op
            ops[op] = ops.get(op, 0) + 1
        with self._stats_lock:
            self._mutations["applied"] += 1
            for op, count in ops.items():
                self._mutations["ops"][op] = self._mutations["ops"].get(op, 0) + count
        return {
            "document": document,
            "doc_version": entry.doc_version,
            "applied": sum(ops.values()),
            "ops": ops,
            "seconds": time.monotonic() - started,
            "maintenance_seconds": entry.shred_seconds,
            "pool_entries_evicted": evicted,
            "dag_vertices": entry.dag_vertices,
            "skeleton_nodes": entry.skeleton_nodes,
        }

    def evict(self, document: str) -> int:
        """Drop ``document`` residency in every worker; return entries dropped.

        ``request_timeout`` bounds the whole broadcast (one shared deadline
        across the fleet, same as :meth:`wait_ready`): a wedged worker must
        not stall the caller — an HTTP handler thread — for a fresh full
        timeout per slot.
        """
        submitted = []
        for slot in self._slots:
            try:
                request_id, future = self._submit(slot, ("evict", document))
            except ClusterError:
                continue  # dead worker / shutting down: no residency to drop
            submitted.append((slot, request_id, future))
        evicted = 0
        deadline = time.monotonic() + self.request_timeout
        for slot, request_id, future in submitted:
            try:
                evicted += self._await(
                    slot, request_id, future, max(0.0, deadline - time.monotonic())
                )["evicted"]
            except Exception:  # noqa: BLE001 - crashed mid-evict: nothing resident
                continue
        return evicted

    def wait_ready(self, timeout: float = 30.0) -> bool:
        """Ping every worker; True once the whole fleet answers.

        ``timeout`` bounds the whole call (one shared deadline), not each
        worker individually.
        """
        deadline = time.monotonic() + timeout
        try:
            submitted = [
                (slot, *self._submit(slot, ("ping",))) for slot in self._slots
            ]
            for slot, request_id, future in submitted:
                self._await(
                    slot, request_id, future, max(0.0, deadline - time.monotonic())
                )
        except Exception:  # noqa: BLE001 - dead/slow worker: not ready
            return False
        return True

    def stats_dict(self) -> dict:
        """Dispatcher + per-worker counters (the ``/stats`` payload).

        Per-worker service/pool/residency numbers are fetched live with one
        short deadline shared across the whole fleet (the probes were all
        submitted before the first wait, so slow workers overlap); a worker
        that cannot answer in time (busy, just respawned, mid-crash)
        reports its dispatcher-side counters only.
        """
        with self._stats_lock:
            respawns = self._respawns
            mutations = {
                "applied": self._mutations["applied"],
                "failed": self._mutations["failed"],
                "ops": dict(self._mutations["ops"]),
            }
            snapshot = [
                {
                    "worker": slot.id,
                    "alive": bool(slot.process and slot.process.is_alive()),
                    "pid": slot.process.pid if slot.process else None,
                    "generation": slot.generation,
                    "dispatched": slot.dispatched,
                    "completed": slot.completed,
                    "failed": slot.failed,
                    "queue_depth": len(slot.inflight),
                    "strikes": slot.strikes,
                    "breaker": slot.breaker.stats(),
                }
                for slot in self._slots
            ]
            carries = [slot.carried for slot in self._slots]
        probes = []
        for row, slot in zip(snapshot, self._slots):
            if not row["alive"]:
                continue
            try:
                probes.append((row, slot, *self._submit(slot, ("stats",))))
            except ClusterError:
                row["stats"] = "unavailable"
        probe_deadline = time.monotonic() + 2.0
        for row, slot, request_id, future in probes:
            try:
                worker_stats = self._await(
                    slot, request_id, future, max(0.0, probe_deadline - time.monotonic())
                )
            except Exception:  # noqa: BLE001 - stats are best-effort
                row["stats"] = "unavailable"
                continue
            # Remember this incarnation's freshest counters (folded into the
            # slot's carry if it crashes), then report carry + live so
            # per-worker counters are monotone across respawns.
            with slot.lock:
                if slot.generation == row["generation"]:
                    slot.last_probe = {
                        "service": worker_stats.get("service"),
                        "pool": worker_stats.get("pool"),
                    }
                    slot.last_probe_generation = row["generation"]
            carried = carries[slot.id] or {}  # slot ids are 0..N-1 by construction
            row["service"] = _fold_stats(carried.get("service"), worker_stats.get("service"))
            row["pool"] = _fold_stats(carried.get("pool"), worker_stats.get("pool"))
            row["resident"] = worker_stats.get("resident")
            row["quarantined"] = worker_stats.get("quarantined") or []
            row["shards"] = sorted(
                {document for document, _ in worker_stats.get("resident") or []}
            )
        # A shard that could not be probed (dead, mid-respawn, too busy)
        # still reports the counters its dead incarnations accrued — the
        # monotone floor — instead of disappearing from /stats.
        for row, carried in zip(snapshot, carries):
            if carried and "service" not in row:
                row["service"] = carried.get("service")
                row["pool"] = carried.get("pool")
        return {
            "cluster": {
                "workers": self.workers,
                "alive": sum(1 for row in snapshot if row["alive"]),
                "mode": self.mode,
                "dispatched": sum(row["dispatched"] for row in snapshot),
                "completed": sum(row["completed"] for row in snapshot),
                "failed": sum(row["failed"] for row in snapshot),
                "queue_depth": sum(row["queue_depth"] for row in snapshot),
                "respawns": respawns,
                "breakers_open": sum(
                    1 for row in snapshot if row["breaker"]["state"] == "open"
                ),
            },
            "workers": snapshot,
            "mode": self.mode,
            "admission": self.admission.stats(),
            "kernel": kernel_info(),
            "mutations": mutations,
            "doc_versions": {
                entry.name: entry.doc_version for entry in self.catalog.entries()
            },
        }

    def health_dict(self) -> dict:
        """Fleet health beyond alive/dead: ``ok`` or ``degraded`` + reasons.

        Degraded when shards are down or routed around (open breakers),
        documents are quarantined, or admission is shedding above the
        configured rate — the fleet still answers what it can, but a probe
        watching ``/healthz`` should know capacity or fidelity is reduced.
        """
        reasons: list[str] = []
        alive = sum(
            1 for slot in self._slots if slot.process and slot.process.is_alive()
        )
        if alive < self.workers:
            reasons.append(f"{self.workers - alive} worker(s) down")
        open_breakers = [
            slot.id for slot in self._slots if slot.breaker.state == CircuitBreaker.OPEN
        ]
        if open_breakers:
            reasons.append(f"circuit breaker open on shard(s) {open_breakers}")
        # Quarantine verdicts live where loads happen: in fleet mode that is
        # each worker's own catalog, so the front-end's view alone would
        # report "ok" while a shard refuses a corrupt document.  Union the
        # workers' quarantine sets (best-effort stats probes — a worker too
        # busy to answer just contributes nothing this round).
        quarantine_union = set(self.catalog.quarantined())
        for row in self.stats_dict()["workers"]:
            quarantine_union.update(row.get("quarantined") or [])
        quarantined = sorted(quarantine_union)
        if quarantined:
            reasons.append(f"{len(quarantined)} quarantined document(s)")
        shed_rate = self.admission.shed_rate()
        if shed_rate > self.degraded_shed_rate:
            reasons.append(f"shedding {shed_rate:.1f} requests/s")
        return {
            "status": "degraded" if reasons else "ok",
            "reasons": reasons,
            "workers": self.workers,
            "alive": alive,
            "open_breakers": open_breakers,
            "quarantined": quarantined,
            "shed_rate": round(shed_rate, 3),
        }

    # -- shutdown --------------------------------------------------------

    def close(self, timeout: float | None = None) -> None:
        """Graceful drain: sentinel, join with deadline, then escalate.

        ``timeout`` (default ``drain_timeout``) bounds the *whole* drain —
        one shared deadline across the fleet, like :meth:`evict` and
        :meth:`wait_ready` — so a wedged 8-worker fleet shuts down in one
        drain window, not eight.  Every slot's pump, in-flight futures, and
        queues are torn down even when its worker is already dead or
        sitting in crash-loop backoff (``process is None``).
        """
        if self._closing.is_set():
            return
        drain = timeout if timeout is not None else self.drain_timeout
        self._closing.set()
        self._monitor.join(timeout=max(1.0, self.health_interval * 4))
        for slot in self._slots:
            try:
                slot.request_queue.put(SHUTDOWN)
            except Exception:  # noqa: BLE001 - queue already broken: escalate below
                pass
        deadline = time.monotonic() + drain
        for slot in self._slots:
            process = slot.process
            if process is not None:
                process.join(timeout=max(0.0, deadline - time.monotonic()))
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=2.0)
                if process.is_alive():  # pragma: no cover - terminate() sufficed
                    process.kill()
                    process.join(timeout=2.0)
            slot.stop_pump.set()
            with slot.lock:
                doomed = list(slot.inflight.values())
                slot.inflight = {}
            for future, _ in doomed:
                if not future.done():
                    future.set_exception(ClusterError("the worker fleet shut down"))
            for queue in (slot.request_queue, slot.response_queue):
                try:
                    queue.cancel_join_thread()
                    queue.close()
                except Exception:  # noqa: BLE001 - best-effort teardown
                    pass
        for slot in self._slots:
            if slot.pump is not None:
                slot.pump.join(timeout=2.0)

"""A faithful port of the paper's Figure 4 in-place downward-axis procedure.

This is the literal algorithm of Proposition 3.2: traverse the DAG from the
root visiting each vertex once, pass the desired new selection ``sv`` down,
and *split* a shared child (create a copy, remembered in ``aux_ptr``) when a
second parent requires the opposite selection; for the descendant axes the
copy is recursively re-processed so the selection reaches its subtree.

The primary engine (:mod:`repro.engine.axes_compressed`) uses a functional
rebuild instead; this module exists because the paper's pseudocode is a
contribution in itself, and the two are property-tested equivalent
(``tests/engine/test_axes_equivalence.py``).  Differences from the rebuild:

* the instance is mutated: vertex ids are stable, copies are appended;
* vertices whose every parent switched to a copy become unreachable (the
  paper does not garbage-collect either); use :meth:`Instance.compact` if a
  validated instance is needed afterwards.

The recursion of Figure 4 is unrolled onto an explicit stack so arbitrarily
deep DAGs (compressed chains) do not hit Python's recursion limit.
"""

from __future__ import annotations

from repro.errors import EvaluationError
from repro.model import planes as _pl
from repro.model.instance import Instance

_DOWNWARD = ("child", "descendant", "descendant-or-self")


def downward_axis_inplace(instance: Instance, axis: str, source: str, target: str) -> Instance:
    """Figure 4: apply a downward axis, splitting shared vertices as needed."""
    if axis not in _DOWNWARD:
        raise EvaluationError(f"{axis!r} is not a downward axis")
    if instance.has_set(target):
        raise EvaluationError(f"target set {target!r} already exists")
    # Hoisted plane references: planes grow *in place* when splits append
    # vertices, so these locals stay valid across new_vertex_masked calls.
    source_plane = instance.plane_of(source)
    target_index = instance.ensure_set(target)
    target_plane = instance.plane_of(target)
    target_bit = 1 << target_index
    descend = axis in ("descendant", "descendant-or-self")
    or_self = axis == "descendant-or-self"

    visited: dict[int, bool] = {}
    aux: dict[int, int] = {}  # aux_ptr of Figure 4

    def in_source(vertex: int) -> bool:
        return bool(source_plane[vertex >> 6] >> (vertex & 63) & 1)

    def selection(vertex: int) -> bool:
        return bool(target_plane[vertex >> 6] >> (vertex & 63) & 1)

    def set_selection(vertex: int, value: bool) -> None:
        if value:
            target_plane[vertex >> 6] |= 1 << (vertex & 63)
        else:
            target_plane[vertex >> 6] &= _pl.FULL_WORD ^ (1 << (vertex & 63))

    root = instance.root
    initial = in_source(root) if or_self else False

    # Stack frames: [vertex, sv, child_index, mutable edge list].
    stack: list[list] = []

    def open_frame(vertex: int, sv: bool) -> None:
        visited[vertex] = True  # line 1
        set_selection(vertex, sv)  # line 2
        stack.append([vertex, sv, 0, list(instance.children(vertex))])

    open_frame(root, initial)
    while stack:
        frame = stack[-1]
        vertex, sv, index, edges = frame
        if index >= len(edges):
            instance.set_children(vertex, edges)
            stack.pop()
            continue
        child, count = edges[index]
        # Line 4: the selection this parent requires for the child.
        sw = in_source(vertex) or (sv and descend) or (or_self and in_source(child))
        if not visited.get(child, False):
            frame[2] = index + 1
            open_frame(child, sw)  # line 5
        elif selection(child) != sw:  # line 6
            copy = aux.get(child)
            if copy is None:  # line 7 (aux_ptr = 0)
                copy = instance.new_vertex_masked(  # lines 8-9
                    instance.mask(child) ^ target_bit, instance.children(child)
                )
                aux[child] = copy  # line 13
                if descend:  # lines 10-12: re-process the copy's subtree
                    edges[index] = (copy, count)
                    frame[2] = index + 1
                    open_frame(copy, sw)
                    continue
                visited[copy] = True
            edges[index] = (copy, count)  # line 14
            frame[2] = index + 1
        else:
            frame[2] = index + 1
    return instance

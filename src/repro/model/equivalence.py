"""Instance equivalence (Definition 2.1).

Two sigma-instances are equivalent when they have the same edge-path sets
``Pi(V)`` and ``Pi(S)`` for every ``S`` in the schema — i.e. they unfold to
the same labeled ordered tree.  Enumerating paths is exponential, so the
practical decision procedure canonicalises both instances in a shared
hash-cons table and compares root ids (``I == J  iff  M(I) ~ M(J)``,
Propositions 2.3-2.5).  The brute-force path comparison is kept as
:func:`equivalent_by_paths` and used by tests as an oracle on small inputs.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.model.canonical import ConsTable, canonical_ids, shared_name_order
from repro.model.instance import Instance
from repro.model.paths import edge_path_set, set_path_sets


def equivalent(a: Instance, b: Instance) -> bool:
    """Decide equivalence via shared canonicalisation (linear time).

    Raises :class:`SchemaError` if the instances are over different schema
    *sets* (equivalence is only defined for instances over the same schema;
    use :meth:`Instance.reduct` first if needed).
    """
    order = shared_name_order(a, b)
    table = ConsTable()
    ids_a = canonical_ids(a, table, order)
    ids_b = canonical_ids(b, table, order)
    return ids_a[a.root] == ids_b[b.root]


def equivalent_by_paths(a: Instance, b: Instance, limit: int = 100_000) -> bool:
    """Decide equivalence by explicit edge-path enumeration (test oracle).

    Exponential in the worst case; raises
    :class:`repro.errors.DecompressionLimitError` beyond ``limit`` tree nodes.
    """
    if set(a.schema) != set(b.schema):
        raise SchemaError("instances are over different schemas")
    if edge_path_set(a, limit) != edge_path_set(b, limit):
        return False
    paths_a = set_path_sets(a, limit)
    paths_b = set_path_sets(b, limit)
    return all(paths_a[name] == paths_b[name] for name in a.schema)


def compatible(a: Instance, b: Instance) -> bool:
    """Section 2.3: compatible iff the reducts to the shared schema are equivalent."""
    shared = sorted(set(a.schema) & set(b.schema))
    return equivalent(a.reduct(shared), b.reduct(shared))

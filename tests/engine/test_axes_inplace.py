"""Direct tests for the Figure 4 in-place splitting procedure."""

import pytest

from repro.engine.axes_inplace import downward_axis_inplace
from repro.errors import EvaluationError
from repro.model.instance import Instance


@pytest.fixture
def diamond():
    """r -> a -> x, r -> b -> x: the minimal sharing that forces a split."""
    instance = Instance(["r", "a", "b", "x"])
    x = instance.new_vertex(["x"])
    a = instance.new_vertex(["a"], [(x, 1)])
    b = instance.new_vertex(["b"], [(x, 1)])
    instance.set_root(instance.new_vertex(["r"], [(a, 1), (b, 1)]))
    return instance


class TestFigure4:
    def test_child_split_creates_one_copy(self, diamond):
        before = diamond.num_vertices
        downward_axis_inplace(diamond, "child", "a", "out")
        # Exactly one copy of x: the a-side selected, the b-side not.
        assert diamond.num_vertices == before + 1
        assert len(diamond.members("out") & diamond.reachable()) == 1

    def test_vertex_ids_stable(self, diamond):
        root = diamond.root
        downward_axis_inplace(diamond, "descendant", "r", "out")
        assert diamond.root == root  # mutation, not rebuild

    def test_descendant_propagates_through_copy(self):
        # r -> a -> m -> x ; r -> m (shared): descendant(a) must select the
        # copy of m under a AND its x below.
        instance = Instance(["r", "a", "m", "x"])
        x = instance.new_vertex(["x"])
        m = instance.new_vertex(["m"], [(x, 1)])
        a = instance.new_vertex(["a"], [(m, 1)])
        instance.set_root(instance.new_vertex(["r"], [(a, 1), (m, 1)]))
        downward_axis_inplace(instance, "descendant", "a", "out")
        out = instance.members("out") & instance.reachable()
        selected_tags = {instance.sets_at(v) for v in out}
        # m-copy and x selected (x stays shared? x under the unselected m is
        # the same tree node... x occurs under both m's: as descendant of a
        # only via a's m; so x must split too).
        assert any("m" in tags for tags in selected_tags)
        assert any("x" in tags for tags in selected_tags)

    def test_aux_ptr_prevents_duplicate_copies(self):
        # Three parents disagreeing over one shared child: only one copy.
        instance = Instance(["s", "t", "x"])
        x = instance.new_vertex(["x"])
        s1 = instance.new_vertex(["s"], [(x, 1)])
        s2 = instance.new_vertex(["s"], [(x, 1)])
        t = instance.new_vertex(["t"], [(x, 1)])
        instance.set_root(instance.new_vertex(children=[(s1, 1), (s2, 1), (t, 1)]))
        before = instance.num_vertices
        downward_axis_inplace(instance, "child", "s", "out")
        # s1 and s2 both want x selected; t wants unselected: <= 1 copy, and
        # s1/s2 share it (aux_ptr reuse).
        assert instance.num_vertices == before + 1

    def test_non_downward_axis_rejected(self, diamond):
        with pytest.raises(EvaluationError, match="not a downward axis"):
            downward_axis_inplace(diamond, "parent", "a", "out")

    def test_existing_target_rejected(self, diamond):
        with pytest.raises(EvaluationError, match="already exists"):
            downward_axis_inplace(diamond, "child", "a", "b")

    def test_unreachable_originals_tolerated_by_compact(self, diamond):
        # If every parent switches to the copy the original goes stale;
        # compact() must yield a valid instance either way.
        downward_axis_inplace(diamond, "descendant-or-self", "r", "out")
        compacted = diamond.compact()
        compacted.validate()

    def test_multiplicity_edges_orthogonal(self):
        # Fig 4 note: multiplicities are orthogonal to downward axes.
        instance = Instance(["r"])
        leaf = instance.new_vertex()
        instance.set_root(instance.new_vertex(["r"], [(leaf, 500)]))
        downward_axis_inplace(instance, "child", "r", "out")
        assert instance.num_edge_entries == 1  # the run never splits
        assert len(instance.members("out")) == 1

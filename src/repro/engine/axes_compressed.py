"""Axis application directly on compressed instances (section 3.2).

Upward axes (Proposition 3.3) never change the DAG: whether a vertex has a
descendant in ``S`` is a property of its (shared) subtree, so one memoized
bottom-up pass adds the new selection in place.

Downward and sibling axes may need to *split* shared vertices, because the
new selection of a tree node depends on its ancestors/left siblings, which
differ between the tree nodes a shared vertex represents.  The implementation
here is functional: the output instance is (a reachable part of) the product
``V x {0,1}``, where the bit is the one piece of context the axis needs —
"has an ancestor in S" for descendant axes, "parent is in S" for child,
"has a preceding/following sibling in S" for the sibling axes.  Memoising on
``(vertex, bit)`` makes the at-most-2x growth of Proposition 3.2 and
Theorem 3.6 structurally evident.  (The paper's literal in-place splitting
procedure of Figure 4 is in :mod:`repro.engine.axes_inplace`; both are
property-tested equivalent.)

Multiplicity edges: for downward axes the bit is constant along a run, so
runs survive untouched.  For sibling axes a run ``(w, m)`` with ``w in S``
is where multiplicities genuinely interact — occurrences after the first
have a preceding sibling *inside the run* — so a run may split into
``(w,1) + (w', m-1)``, and symmetrically for preceding-sibling.  Note the
precise growth accounting: vertices and *expanded* edges at most double per
operation, but run-length edge *entries* can reach 4x under sibling axes
(run splitting on top of vertex splitting); the paper's "at most doubles"
refers to the expanded counts.

Split-avoiding fast paths (DESIGN.md section 5): before rebuilding, the
splitting axes run a cheap O(|E|) scan that computes, for every reachable
vertex, the set of context bits it would receive in the product.  When no
vertex receives both bits (true for every tree, and for DAG/selection
combinations where shared vertices happen to agree — e.g. ``descendant``
from the root), the product would be isomorphic to the input, so the axis
commits the new selection as an in-place mask pass instead — no rebuild, no
renumbering, and the instance's cached traversal orders survive.  The
rebuild remains the general path and the two are property-tested to produce
equivalent instances.

Kernel tiers (DESIGN.md section 11): with set memberships stored as
contiguous bit planes, the in-place passes come in two shapes.  When numpy
is active and the instance has at least :data:`VECTOR_THRESHOLD` edge
entries, the passes run *level-synchronously* over the cached
:class:`~repro.model.instance.EdgeCSR` — unpack the source plane to a bool
vector once, then one gather/scatter per longest-path level (ascending for
downward propagation, descending for upward), packing the result back into
the target plane at the end.  Below the threshold, or without numpy, the
scalar loops walk the cached traversal orders reading single plane bits —
the historical shape, still O(|E|), and the reference the vectorized tier
is property-tested against.  The genuinely sequential sibling flag scan
stays scalar in both tiers.
"""

from __future__ import annotations

from repro.errors import EvaluationError
from repro.model import planes as _pl
from repro.model.instance import Instance, normalize_edges

#: Minimum run-length edge entries before the numpy level-synchronous
#: kernels pay for themselves; tiny instances (the paper's Figure 1 scale)
#: stay on the scalar loops.
VECTOR_THRESHOLD = 256


def _vectorized(instance: Instance) -> bool:
    return _pl.numpy_active() and instance.num_edge_entries >= VECTOR_THRESHOLD


def _restrict_reachable(instance: Instance, plane) -> None:
    """``plane &= reachable`` unless every vertex is reachable anyway."""
    if len(instance.preorder()) != instance.num_vertices:
        _pl.intersect_into(plane, instance.reachable_plane())


def apply_axis(instance: Instance, axis: str, source: str, target: str) -> Instance:
    """Apply ``axis`` to set ``source``, adding the result as set ``target``.

    Upward axes, ``self``, and split-free applications of the downward and
    sibling axes mutate ``instance`` in place and return it; genuinely
    splitting applications return a *new* instance (all existing sets
    carried over).  ``target`` must not already exist.
    """
    if instance.has_set(target):
        raise EvaluationError(f"target set {target!r} already exists")
    source_plane = instance.plane_of(source)
    live = _pl.copy_plane(source_plane)
    _restrict_reachable(instance, live)
    if not _pl.any_bit(live):
        # chi(empty) = empty for every axis: add an empty target set without
        # touching the structure (a common case for queries over tags the
        # document does not use).
        instance.ensure_set(target)
        return instance
    if axis == "self":
        return _self(instance, live, target)
    if axis == "parent":
        return _parent(instance, source, target)
    if axis == "ancestor":
        return _ancestor(instance, source, target, or_self=False)
    if axis == "ancestor-or-self":
        return _ancestor(instance, source, target, or_self=True)
    if axis in ("child", "descendant", "descendant-or-self"):
        return _downward(instance, axis, source, target)
    if axis == "following-sibling":
        return _sibling(instance, source, target, following=True)
    if axis == "preceding-sibling":
        return _sibling(instance, source, target, following=False)
    if axis == "following":
        return _composite(instance, source, target, ("ancestor-or-self", "following-sibling", "descendant-or-self"))
    if axis == "preceding":
        return _composite(instance, source, target, ("ancestor-or-self", "preceding-sibling", "descendant-or-self"))
    raise EvaluationError(f"unknown axis {axis!r}")


def _composite(instance: Instance, source: str, target: str, chain) -> Instance:
    """following/preceding via the section 3.2 composition, through temps.

    The first stage is an in-place upward pass and the later stages usually
    take the split-avoiding fast path, so all three stages share one cached
    postorder of the instance (mask-only passes do not invalidate it); the
    temporaries are then dropped in a single :meth:`Instance.drop_sets` pass.
    """
    current = source
    temps = []
    for index, axis in enumerate(chain):
        name = f"{target}~{index}" if index < len(chain) - 1 else target
        instance = apply_axis(instance, axis, current, name)
        if current != source:
            temps.append(current)
        current = name
    instance.drop_sets(temps)
    return instance


# ----------------------------------------------------------------------
# Upward axes: in place, one pass, no splitting (Proposition 3.3)
# ----------------------------------------------------------------------


def _self(instance: Instance, live, target: str) -> Instance:
    # ``live`` is already source & reachable: one plane OR commits the axis.
    _pl.or_into(instance.ensure_plane(target), live)
    return instance


def _parent(instance: Instance, source: str, target: str) -> Instance:
    source_plane = instance.plane_of(source)
    if _vectorized(instance):
        numpy = _pl._numpy
        esrc, edst = instance.edge_flat().np_arrays()
        # One gather + one scatter: a vertex is selected iff any of its
        # run-length edges points into S.  No level schedule needed.
        source_bool = _pl.unpack_bool(source_plane, instance.num_vertices)
        selected = numpy.zeros(instance.num_vertices, dtype=numpy.uint8)
        selected[esrc[source_bool[edst].astype(bool)]] = 1
        _pl.or_into(
            instance.ensure_plane(target), _pl.pack_bool(selected, instance.nwords)
        )
        return instance
    target_plane = instance.ensure_plane(target)
    children = instance.edge_table()
    for vertex in instance.preorder():
        for child, _ in children[vertex]:
            if source_plane[child >> 6] >> (child & 63) & 1:
                target_plane[vertex >> 6] |= 1 << (vertex & 63)
                break
    return instance


def _ancestor(instance: Instance, source: str, target: str, or_self: bool) -> Instance:
    source_plane = instance.plane_of(source)
    if _vectorized(instance):
        numpy = _pl._numpy
        csr = instance.edge_csr()
        esrc, edst = csr.np_arrays()
        source_bool = _pl.unpack_bool(source_plane, instance.num_vertices)
        # strict[v] = "v has a proper descendant in S".  Levels descending:
        # every child sits at a strictly greater level than its parents, so
        # strict[child] is final before any of the child's in-edges fire.
        # The recurrence is the same for both variants: or-self only changes
        # the final commit (strict | S), not what flows upward.
        strict = numpy.zeros(instance.num_vertices, dtype=numpy.uint8)
        for start, end in reversed(csr.spans):
            if start == end:
                continue
            dst = edst[start:end]
            hit = (source_bool[dst] | strict[dst]).astype(bool)
            strict[esrc[start:end][hit]] = 1
        result = _pl.pack_bool(strict, instance.nwords)
        if or_self:
            _pl.or_into(result, source_plane)
            _restrict_reachable(instance, result)
        _pl.or_into(instance.ensure_plane(target), result)
        return instance
    target_plane = instance.ensure_plane(target)
    children = instance.edge_table()
    # Children before parents: selection flows upward.
    for vertex in instance.postorder():
        selected = bool(
            or_self and source_plane[vertex >> 6] >> (vertex & 63) & 1
        )
        if not selected:
            for child, _ in children[vertex]:
                word, shift = child >> 6, child & 63
                if (source_plane[word] | target_plane[word]) >> shift & 1:
                    selected = True
                    break
        # ancestor-or-self additionally keeps S itself selected.
        if selected:
            target_plane[vertex >> 6] |= 1 << (vertex & 63)
    return instance


# ----------------------------------------------------------------------
# Downward axes: (vertex, bit) product rebuild (Proposition 3.2)
# ----------------------------------------------------------------------


def _downward(instance: Instance, axis: str, source: str, target: str) -> Instance:
    fast = _downward_inplace(instance, axis, source, target)
    if fast is not None:
        return fast
    return _downward_rebuild(instance, axis, source, target)


def _downward_inplace(
    instance: Instance, axis: str, source: str, target: str
) -> Instance | None:
    """Split-avoiding fast path: commit the selection in place, or ``None``.

    One pass computes the context bit every reachable vertex receives from
    its parents; if some shared vertex receives both bits the product
    genuinely splits and the caller falls back to the rebuild.
    """
    descend = axis in ("descendant", "descendant-or-self")
    or_self = axis == "descendant-or-self"
    source_plane = instance.plane_of(source)
    if _vectorized(instance):
        numpy = _pl._numpy
        nvertices = instance.num_vertices
        source_bool = _pl.unpack_bool(source_plane, nvertices)
        got0 = numpy.zeros(nvertices, dtype=numpy.uint8)
        got1 = numpy.zeros(nvertices, dtype=numpy.uint8)
        got0[instance.root] = 1
        if descend:
            # Levels ascending: a parent's own context bit (got1) is final
            # once its level is reached, because all of its in-edges fired
            # earlier.
            csr = instance.edge_csr()
            esrc, edst = csr.np_arrays()
            for start, end in csr.spans:
                if start == end:
                    continue
                src = esrc[start:end]
                sel = (source_bool[src] | got1[src]).astype(bool)
                dst = edst[start:end]
                got1[dst[sel]] = 1
                got0[dst[~sel]] = 1
        else:
            # The child bit depends only on the parent's own membership, so
            # no level schedule is needed: one scatter over the flat edges.
            esrc, edst = instance.edge_flat().np_arrays()
            sel = source_bool[esrc].astype(bool)
            got1[edst[sel]] = 1
            got0[edst[~sel]] = 1
        # The fixpoint is monotone, so a both-bits vertex exists here iff the
        # truncated scalar scan would find one: fall back identically.
        if bool((got0 & got1).any()):
            return None
        if or_self:
            numpy.bitwise_or(got1, source_bool, out=got1)
            result = _pl.pack_bool(got1, instance.nwords)
            _restrict_reachable(instance, result)
        else:
            result = _pl.pack_bool(got1, instance.nwords)
        _pl.or_into(instance.ensure_plane(target), result)
        return instance
    children = instance.edge_table()
    order = instance.topological_order()
    got0 = bytearray(len(children))
    got1 = bytearray(len(children))
    got0[instance.root] = 1
    for vertex in order:
        bit = got1[vertex]
        if bit and got0[vertex]:
            return None
        if source_plane[vertex >> 6] >> (vertex & 63) & 1 or (descend and bit):
            received = got1
        else:
            received = got0
        for child, _ in children[vertex]:
            received[child] = 1
    target_plane = instance.ensure_plane(target)
    if or_self:
        for vertex in order:
            if got1[vertex] or source_plane[vertex >> 6] >> (vertex & 63) & 1:
                target_plane[vertex >> 6] |= 1 << (vertex & 63)
    else:
        for vertex in order:
            if got1[vertex]:
                target_plane[vertex >> 6] |= 1 << (vertex & 63)
    return instance


def _downward_rebuild(instance: Instance, axis: str, source: str, target: str) -> Instance:
    result = Instance(instance.schema)
    descend = axis in ("descendant", "descendant-or-self")
    or_self = axis == "descendant-or-self"
    source_plane = instance.plane_of(source)
    children = instance.edge_table()
    order = instance.topological_order()
    nvertices = len(children)
    new_vertex = result.new_vertex_masked

    # Pass 1 — which product states are reachable.  Parents precede their
    # children in the topological order, so by the time a vertex is visited
    # both of its potential states are final and can be expanded at once.
    has0 = bytearray(nvertices)
    has1 = bytearray(nvertices)
    in_src = bytearray(nvertices)
    has0[instance.root] = 1
    for vertex in order:
        word = source_plane[vertex >> 6] >> (vertex & 63) & 1
        in_src[vertex] = word
        edges = children[vertex]
        if not edges:
            continue
        if has0[vertex]:
            received = has1 if word else has0
            for child, _ in edges:
                received[child] = 1
        if has1[vertex]:
            received = has1 if (word or descend) else has0
            for child, _ in edges:
                received[child] = 1

    # Pass 2 — materialize states children-first, wiring edges through flat
    # id maps instead of a DFS memo.  Vertices are created bare; memberships
    # are carried over afterwards with one gather per plane via the origin
    # map.  The emitted edges double as the new instance's flat edge list.
    id0 = [0] * nvertices
    id1 = [0] * nvertices
    origin: list[int] = []
    selected: list[int] = []
    fsrc: list[int] = []
    fdst: list[int] = []
    fcnt: list[int] = []
    for vertex in reversed(order):
        in_source = in_src[vertex]
        edges = children[vertex]
        wired = None
        if has0[vertex]:
            ids = id1 if in_source else id0
            wired = tuple((ids[c], m) for c, m in edges)
            new_id = id0[vertex] = new_vertex(0, wired)
            origin.append(vertex)
            selected.append(or_self and in_source)
            for c, m in wired:
                fsrc.append(new_id)
                fdst.append(c)
                fcnt.append(m)
        if has1[vertex]:
            if in_source or not descend:
                # Same child bit as the 0-state (for ``child`` the bit never
                # depends on the parent's own bit) — reuse its wiring.
                if wired is None:
                    ids = id1 if in_source else id0
                    wired = tuple((ids[c], m) for c, m in edges)
            else:
                wired = tuple((id1[c], m) for c, m in edges)
            new_id = id1[vertex] = new_vertex(0, wired)
            origin.append(vertex)
            selected.append(1)
            for c, m in wired:
                fsrc.append(new_id)
                fdst.append(c)
                fcnt.append(m)
    result.gather_sets_from(instance, origin)
    target_plane = result.ensure_plane(target)
    for new_id, flag in enumerate(selected):
        if flag:
            target_plane[new_id >> 6] |= 1 << (new_id & 63)
    result.set_root(id0[instance.root])
    result.adopt_edge_flat(fsrc, fdst, fcnt)
    return result


# ----------------------------------------------------------------------
# Sibling axes: product rebuild with per-run splitting (Proposition 3.4)
# ----------------------------------------------------------------------


def _sibling(instance: Instance, source: str, target: str, following: bool) -> Instance:
    fast = _sibling_inplace(instance, source, target, following)
    if fast is not None:
        return fast
    return _sibling_rebuild(instance, source, target, following)


def _sibling_inplace(
    instance: Instance, source: str, target: str, following: bool
) -> Instance | None:
    """Split-avoiding fast path for the sibling axes, or ``None``.

    A vertex splits when two parent positions disagree on "has a
    preceding/following sibling in S", or when a run ``(w, m)`` with
    ``m > 1`` straddles the flag flip (``w in S`` while the flag is still
    0), which would split the run itself.  One scan over all reachable
    edge lists detects both; otherwise the selection is a pure mask pass.
    The flag scan is order-sensitive along each edge list, so it stays
    scalar in both kernel tiers.
    """
    source_plane = instance.plane_of(source)
    children = instance.edge_table()
    order = instance.preorder()
    got0 = bytearray(len(children))
    got1 = bytearray(len(children))
    got0[instance.root] = 1
    for vertex in order:
        edges = children[vertex]
        if not edges:
            continue
        flag = 0
        for child, count in edges if following else reversed(edges):
            in_source = source_plane[child >> 6] >> (child & 63) & 1
            if count > 1 and in_source and not flag:
                return None  # the run itself splits: (w,1) + (w',m-1)
            if flag:
                got1[child] = 1
            else:
                got0[child] = 1
            if in_source:
                flag = 1
    for vertex in order:
        if got0[vertex] and got1[vertex]:
            return None
    target_plane = instance.ensure_plane(target)
    for vertex in order:
        if got1[vertex]:
            target_plane[vertex >> 6] |= 1 << (vertex & 63)
    return instance


def _sibling_rebuild(
    instance: Instance, source: str, target: str, following: bool
) -> Instance:
    result = Instance(instance.schema)
    source_plane = instance.plane_of(source)
    children = instance.edge_table()
    new_vertex = result.new_vertex_masked

    # The bit a child state receives depends only on its parent's children
    # (not on the parent's own bit), so each parent's child-state run list is
    # computed once and shared by both of its product states.
    order = instance.topological_order()
    nvertices = len(children)
    runs_of: list = [None] * nvertices

    def states_of(vertex: int) -> list[tuple[int, int, int]]:
        runs: list[tuple[int, int, int]] = []  # (child, bit, count)
        edges = children[vertex]
        flag = 0
        sequence = edges if following else tuple(reversed(edges))
        for child, count in sequence:
            in_source = source_plane[child >> 6] >> (child & 63) & 1
            inner = 1 if (flag or in_source) else 0
            if count == 1:
                part = [(child, flag, 1)]
            elif following:
                part = [(child, flag, 1), (child, inner, count - 1)]
            else:
                part = [(child, inner, count - 1), (child, flag, 1)]
            if not following:
                part.reverse()  # we are scanning right-to-left
            runs.extend(part)
            flag = 1 if (flag or in_source) else 0
        if not following:
            runs.reverse()
        return runs

    # Pass 1 — which product states are reachable.  Since the child bit is
    # independent of the parent's bit, a vertex's run list fires whenever the
    # vertex is reachable at all.
    has0 = bytearray(nvertices)
    has1 = bytearray(nvertices)
    has0[instance.root] = 1
    for vertex in order:
        runs = states_of(vertex)
        runs_of[vertex] = runs
        for child, child_bit, _ in runs:
            if child_bit:
                has1[child] = 1
            else:
                has0[child] = 1

    # Pass 2 — materialize states children-first through flat id maps; both
    # states of a vertex share one (immutable) edge tuple, and the emitted
    # edges double as the new instance's flat edge list.
    id0 = [0] * nvertices
    id1 = [0] * nvertices
    origin: list[int] = []
    selected: list[int] = []
    fsrc: list[int] = []
    fdst: list[int] = []
    fcnt: list[int] = []
    for vertex in reversed(order):
        edges = normalize_edges(
            ((id1 if child_bit else id0)[child], count)
            for child, child_bit, count in runs_of[vertex]
        )
        if has0[vertex]:
            new_id = id0[vertex] = new_vertex(0, edges)
            origin.append(vertex)
            selected.append(0)
            for c, m in edges:
                fsrc.append(new_id)
                fdst.append(c)
                fcnt.append(m)
        if has1[vertex]:
            new_id = id1[vertex] = new_vertex(0, edges)
            origin.append(vertex)
            selected.append(1)
            for c, m in edges:
                fsrc.append(new_id)
                fdst.append(c)
                fcnt.append(m)
    result.gather_sets_from(instance, origin)
    target_plane = result.ensure_plane(target)
    for new_id, flag in enumerate(selected):
        if flag:
            target_plane[new_id >> 6] |= 1 << (new_id & 63)
    result.set_root(id0[instance.root])
    result.adopt_edge_flat(fsrc, fdst, fcnt)
    return result

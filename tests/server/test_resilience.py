"""Unit tests for the resilience primitives (deadlines, admission, breakers).

The end-to-end behaviour — envelopes over HTTP, faults injected through the
serving path — lives in ``test_chaos.py`` and ``test_http.py``; this file
pins the primitives' own contracts in isolation.
"""

import threading
import time

import pytest

from repro.errors import DeadlineExceededError, OverloadedError, XPathSyntaxError
from repro.server.resilience import (
    FAULTS,
    AdmissionController,
    CircuitBreaker,
    Deadline,
    FaultInjector,
    TokenBucket,
)


class TestDeadline:
    def test_remaining_counts_down(self):
        deadline = Deadline.after(10.0)
        assert 9.0 < deadline.remaining() <= 10.0
        assert not deadline.expired

    def test_after_ms(self):
        deadline = Deadline.after_ms(250.0)
        assert 0.0 < deadline.remaining() <= 0.25

    def test_expired_and_check(self):
        deadline = Deadline.after(-0.01)
        assert deadline.expired
        assert deadline.remaining() < 0
        with pytest.raises(DeadlineExceededError, match="exceeded its deadline"):
            deadline.check()

    def test_check_passes_while_live(self):
        Deadline.after(10.0).check()  # must not raise

    def test_wire_round_trip_is_the_same_instant(self):
        deadline = Deadline.after(5.0)
        rebuilt = Deadline.from_wire(deadline.at)
        assert rebuilt.at == deadline.at
        assert Deadline.from_wire(None) is None

    def test_check_message_names_the_waiter(self):
        with pytest.raises(DeadlineExceededError, match="batch"):
            Deadline.after(-1.0).check("batch")


class TestTokenBucket:
    def test_burst_then_refusal(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.take() == 0.0
        assert bucket.take() == 0.0
        wait = bucket.take()
        assert wait > 0.0  # empty: must wait for refill
        assert wait <= 1.0  # one token at 1/s is at most a second away

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=1000.0, burst=1.0)
        assert bucket.take() == 0.0
        assert bucket.take() > 0.0
        time.sleep(0.01)  # 1000/s refills a full token in 1ms
        assert bucket.take() == 0.0

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=1000.0, burst=1.0)
        time.sleep(0.01)
        assert bucket.take() == 0.0
        assert bucket.take() > 0.0  # burst capped at 1 despite the idle time


class TestAdmissionController:
    def test_unbounded_by_default(self):
        admission = AdmissionController()
        for _ in range(100):
            admission.admit("c")
        assert admission.stats()["inflight"] == 100

    def test_queue_full_sheds_with_retry_after(self):
        admission = AdmissionController(max_queue=2)
        admission.admit()
        admission.admit()
        with pytest.raises(OverloadedError, match="queue is full") as info:
            admission.admit()
        assert info.value.retry_after > 0
        assert admission.stats()["shed_queue_full"] == 1

    def test_release_frees_a_slot(self):
        admission = AdmissionController(max_queue=1)
        admission.admit()
        admission.release()
        admission.admit()  # must not raise
        assert admission.stats()["inflight"] == 1

    def test_rate_limit_is_per_client(self):
        admission = AdmissionController(rate_limit=1.0, rate_burst=1.0)
        admission.admit("alice")
        with pytest.raises(OverloadedError, match="rate limit") as info:
            admission.admit("alice")
        assert 0.0 < info.value.retry_after <= 1.0
        admission.admit("bob")  # a different client's bucket is untouched
        assert admission.stats()["shed_rate_limited"] == 1

    def test_rate_limited_shed_rolls_back_inflight(self):
        admission = AdmissionController(max_queue=10, rate_limit=1.0, rate_burst=1.0)
        admission.admit("c")
        for _ in range(3):
            with pytest.raises(OverloadedError):
                admission.admit("c")
        assert admission.stats()["inflight"] == 1  # sheds never leak slots

    def test_anonymous_clients_skip_the_rate_limit(self):
        admission = AdmissionController(rate_limit=1.0, rate_burst=1.0)
        admission.admit(None)
        admission.admit(None)  # no client identity: depth cap only

    def test_shed_rate_observes_recent_sheds(self):
        admission = AdmissionController(max_queue=1, shed_window=10.0)
        admission.admit()
        for _ in range(5):
            with pytest.raises(OverloadedError):
                admission.admit()
        assert admission.shed_rate() == pytest.approx(0.5)
        assert admission.shed_rate(window=0.0) == 0.0

    def test_client_table_is_bounded(self):
        admission = AdmissionController(rate_limit=1000.0)
        admission.MAX_CLIENTS = 8
        for i in range(50):
            admission.admit(f"client-{i}")
        assert admission.stats()["clients_tracked"] <= 8

    def test_concurrent_admits_respect_the_cap(self):
        admission = AdmissionController(max_queue=5)
        outcomes = []
        barrier = threading.Barrier(20)

        def worker():
            barrier.wait(timeout=5)
            try:
                admission.admit()
                outcomes.append("in")
            except OverloadedError:
                outcomes.append("shed")

        threads = [threading.Thread(target=worker) for _ in range(20)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert outcomes.count("in") == 5
        assert outcomes.count("shed") == 15


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=60.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.stats()["opens"] == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=3, cooldown=60.0)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_hands_out_one_probe(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.01)
        breaker.record_failure()
        assert not breaker.allow()
        time.sleep(0.02)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # herd held back for a fresh cooldown

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.01)
        breaker.record_failure()
        time.sleep(0.02)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.01)
        breaker.record_failure()
        time.sleep(0.02)
        assert breaker.allow()
        breaker.record_failure()
        assert not breaker.allow()


class TestFaultInjector:
    def test_unarmed_fire_is_a_no_op(self):
        injector = FaultInjector()
        injector.fire("anywhere")  # must not raise

    def test_armed_error_raises(self):
        injector = FaultInjector()
        injector.arm("point", error=RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            injector.fire("point")
        injector.fire("other.point")  # only the armed point fires

    def test_times_bounds_then_self_disarms(self):
        injector = FaultInjector()
        injector.arm("point", error=RuntimeError("boom"), times=2)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                injector.fire("point")
        injector.fire("point")  # third fire: disarmed
        assert not injector.enabled

    def test_latency_sleeps(self):
        injector = FaultInjector()
        injector.arm("point", latency=0.05)
        started = time.monotonic()
        injector.fire("point")
        assert time.monotonic() - started >= 0.04

    def test_callback_gets_fire_site_context(self):
        injector = FaultInjector()
        seen = {}
        injector.arm("point", callback=lambda **ctx: seen.update(ctx))
        injector.fire("point", path="/tmp/chunk-0.dag", chunk_id=0)
        assert seen == {"path": "/tmp/chunk-0.dag", "chunk_id": 0}

    def test_disarm_all(self):
        injector = FaultInjector()
        injector.arm("a", error=RuntimeError())
        injector.arm("b", error=RuntimeError())
        injector.disarm()
        injector.fire("a")
        injector.fire("b")
        assert not injector.enabled

    def test_arm_from_spec_rebuilds_wire_kinds(self):
        injector = FaultInjector()
        injector.arm_from_spec(
            {
                "point": {"kind": "xpath-syntax", "message": "injected"},
                "slow": {"latency": 0.0},
            }
        )
        with pytest.raises(XPathSyntaxError, match="injected"):
            injector.fire("point")
        injector.fire("slow")

    def test_global_injector_is_disarmed_between_tests(self):
        # The process-wide seam must default to off — the production path.
        assert not FAULTS.enabled

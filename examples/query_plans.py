"""Rendering compiled query plans — Figure 3 and Example 3.1.

Every Core XPath query compiles to the node-set algebra of section 3.1:
the main path runs forward from {root}, predicates are *reversed* (child
becomes parent, following becomes preceding, ...) so conditions flow toward
the query root as plain set operations.  This example prepares the paper's
Figure 3 query and a few Appendix A queries through the :mod:`repro.api`
façade and prints each :class:`repro.api.Plan` twice — the ASCII tree and
the structured JSON every serving surface shares (``repro explain --json``,
``repro query --explain-json``, the HTTP ``/explain`` route) — and flags
which plans are upward-only (Corollary 3.7: never decompress).

The second half diffs **optimized vs. unoptimized** plans (DESIGN.md
section 13, ``docs/optimizer.md``): the same queries explained against a
loaded document, where the cost-based pass folds provably-empty
branches, rides the root-axis identities, and reorders conjuncts — with
``analyze=True`` attaching measured ``actual`` counts next to every
``est_cardinality``.

Run:  python examples/query_plans.py
"""

from repro.api import Database, PreparedQuery

QUERIES = [
    # Figure 3 / Example 3.1 — verbatim from the paper.
    "/descendant::a/child::b[child::c/child::d or not(following::*)]",
    # Example 3.5.
    "//a/b",
    # A Q1-style tree pattern (upward-only after reversal).
    "/self::*[SEASON/LEAGUE/DIVISION/TEAM/PLAYER]",
    # Branching predicate with a string constraint.
    '//Record[sequence/seq["MMSARGDFLN"] and protein/from["Rattus norvegicus"]]',
]


# Example 1.1's bibliography, the optimizer walk-through document.
BIB_XML = """\
<bib>
  <book><title>Foundations</title><author>A</author><author>B</author><author>C</author></book>
  <paper><title>Compression</title><author>D</author></paper>
  <paper><title>Queries</title><author>E</author></paper>
</bib>
"""

#: Queries picked so each optimizer rule fires at least once: an absent
#: tag that folds the whole plan, a conjunction that reorders, and a
#: plain spine that rides the root-axis identities.
OPTIMIZER_QUERIES = [
    "//absent/title",
    "//paper[author and title]",
    "//book/author",
]


def show_optimizer_diffs() -> None:
    database = Database.from_text(BIB_XML)
    for query_text in OPTIMIZER_QUERIES:
        raw = PreparedQuery.compile(query_text).plan()
        plan = database.explain(query_text, analyze=True)
        print("=" * 72)
        print(f"Query: {query_text}\n")
        print("unoptimized (as compiled):\n")
        print(raw.render())
        block = plan.optimizer or {}
        rules = ", ".join(block.get("rules_applied", ())) or "(none)"
        print(f"\noptimized, analyze=True (rules: {rules}):\n")
        print(plan.render())
        print()
    database.close()


def main() -> None:
    for query_text in QUERIES:
        prepared = PreparedQuery.compile(query_text)
        plan = prepared.plan()
        print("=" * 72)
        print(f"Query: {query_text}\n")
        print(plan.render())
        print(f"\n  schema the one-scan load must extract: tags={list(plan.required_tags)}"
              f" strings={list(plan.required_strings)}")
        if plan.upward_only:
            print("  upward-only: evaluation will NOT decompress (Corollary 3.7)")
        else:
            print(f"  |Q| = {plan.size()} -> worst-case growth 2^|Q| (Theorem 3.6)")
        print("\n  the same plan as structured JSON (what /explain serves):")
        print("  " + plan.to_json())
        print()
    show_optimizer_diffs()


if __name__ == "__main__":
    main()

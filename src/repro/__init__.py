"""repro: Path Queries on Compressed XML (Buneman, Grohe, Koch; VLDB 2003).

A complete reproduction of the paper's system: XML skeletons compressed into
DAGs by subtree sharing (bisimulation) with multiplicity edges, queried
directly with a Core XPath algebra under partial decompression.

Quick start — the :mod:`repro.api` façade::

    import repro

    with repro.open(xml_text) as db:            # or a file path / catalog dir
        result = db.execute("//book/author")    # a lazy ResultSet
        print(result.dag_count(), result.tree_count())
        for path in result.paths(5):            # tree paths, streamed
            print(path)
        for fragment in result.fragments(3):    # actual XML, reassembled
            print(fragment)
        print(db.explain("//book/author").to_json(indent=2))

The same ``Database`` object fronts a served catalog
(``repro.api.Database.from_catalog(dir)``), prepared queries compile once
and run anywhere (``db.prepare`` / ``repro.api.PreparedQuery``), and every
surface — CLI, HTTP server, cluster workers — speaks the same canonical
JSON result encoding.

See README.md for the architecture overview and examples/ for runnable
scenarios.
"""

import warnings

from repro.model import Instance, equivalent, tree_instance
from repro.compress import DagBuilder, common_extension, decompress, instance_stats, minimize


def _version() -> str:
    """Single-source the version from package metadata (pyproject.toml)."""
    from importlib import metadata

    try:
        return metadata.version("repro")
    except metadata.PackageNotFoundError:  # running from a source checkout
        return "1.0.0+src"


__version__ = _version()

#: Deprecated quick-start entry points, kept as thin shims over the engine
#: pipeline.  Use the :mod:`repro.api` façade (``repro.open``) instead.
_DEPRECATED_EXPORTS = {
    "Engine": "use repro.open(...) — a repro.api.Database wrapping an Engine",
    "load_instance": "use repro.open(...), which loads and owns the instance",
    "query": "use repro.open(...).execute(query)",
    "query_batch": "use repro.open(...).execute_batch(queries)",
}

#: Façade names importable from the top level, resolved lazily so that
#: ``import repro`` stays cheap for model-only users.
_API_EXPORTS = ("Database", "Plan", "PreparedQuery", "ResultSet", "open")

__all__ = [
    "DagBuilder",
    "Database",
    "Engine",
    "Instance",
    "Plan",
    "PreparedQuery",
    "ResultSet",
    "api",
    "common_extension",
    "decompress",
    "equivalent",
    "instance_stats",
    "load_instance",
    "minimize",
    "open",
    "query",
    "query_batch",
    "tree_instance",
    "__version__",
]


def __getattr__(name: str):
    # Heavy subsystems (engine, xpath, skeleton, server) are imported
    # lazily, on first attribute access.
    if name in _API_EXPORTS or name == "api":
        # import_module, not ``from repro import api``: the from-import
        # form resolves the attribute through this very __getattr__ while
        # the submodule is still loading, recursing forever.
        from importlib import import_module

        api = import_module("repro.api")
        return api if name == "api" else getattr(api, name)
    if name in _DEPRECATED_EXPORTS:
        warnings.warn(
            f"repro.{name} is deprecated; {_DEPRECATED_EXPORTS[name]} "
            "(the repro.api façade)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.engine import pipeline

        return getattr(pipeline, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__() -> list:
    # Lazily-exported names must be discoverable: dir(repro) lists the
    # façade and the deprecated shims alongside the eager exports.
    return sorted(set(globals()) | set(__all__))

"""Theorem 3.6 and section 3.4: decompression is exponential in |Q| only.

Three measured claims:

1. A query family D_1 ∩ ... ∩ D_k (where D_j = "has a right-sibling turn at
   level j", built from child/following-sibling/descendant-or-self) forces
   instance growth ~2^k on the compressed complete binary tree — the
   worst-case exponential *in query size* that Theorem 3.6 permits.
2. Growth never exceeds the size of the uncompressed tree T(I) (the
   O(|Q| * |T(I)|) cap).
3. Upward-only queries cause zero growth at any size (Corollary 3.7).
"""

from __future__ import annotations

import pytest

from repro.bench.tables import fmt_int, format_table
from repro.engine.evaluator import CompressedEvaluator
from repro.model.instance import Instance
from repro.model.paths import tree_size
from repro.xpath.algebra import AxisApply, Intersect, RootSet

from conftest import register_report

_ROWS = []


def chain_instance(depth: int) -> Instance:
    """The unlabeled complete binary tree of ``depth`` as a chain of doubles."""
    instance = Instance()
    vertex = instance.new_vertex()
    for _ in range(depth):
        vertex = instance.new_vertex(children=[(vertex, 2)])
    instance.set_root(vertex)
    return instance


def turn_condition(level: int):
    """D_level: tree nodes below a right child at ``level`` (incl. itself)."""
    expr = RootSet()
    for _ in range(level):
        expr = AxisApply("child", expr)
    return AxisApply("descendant-or-self", AxisApply("following-sibling", expr))


def conjunction(k: int):
    expr = turn_condition(1)
    for level in range(2, k + 1):
        expr = Intersect(expr, turn_condition(level))
    return expr


DEPTH = 14


@pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6, 7])
def test_exponential_growth_in_query_size(benchmark, k):
    instance = chain_instance(DEPTH)
    before = len(instance.preorder())
    expr = conjunction(k)
    result = CompressedEvaluator(instance).evaluate(expr)
    after = len(result.instance.preorder())
    _ROWS.append([k, fmt_int(before), fmt_int(after), f"{after / before:.1f}x"])

    # Exponential in k: each added conjunct nearly doubles the instance ...
    if k >= 3:
        assert after >= before * 2 ** (k - 1)
    # ... but never beyond the uncompressed tree (x a small per-op factor).
    assert after <= tree_size(instance) * expr.size()

    benchmark(lambda: CompressedEvaluator(instance).evaluate(expr))


def test_growth_caps_at_tree_size():
    """Past k ~ depth the growth flattens: it can never pass |T(I)|-ish."""
    instance = chain_instance(8)  # tree of 511 nodes
    sizes = []
    for k in (2, 4, 6, 8):
        result = CompressedEvaluator(instance).evaluate(conjunction(k))
        sizes.append(len(result.instance.preorder()))
    assert sizes[-1] <= tree_size(instance) * 4
    # Growth between the last two steps is far below doubling-per-conjunct.
    assert sizes[-1] < sizes[-2] * 2


@pytest.mark.parametrize("depth", [100, 1000])
def test_upward_only_queries_never_decompress(benchmark, depth):
    """Corollary 3.7 on instances whose trees have 2^depth nodes."""
    instance = chain_instance(depth)
    instance.ensure_set("leafish")
    instance.add_to_set(0, "leafish")  # the deepest vertex
    before = len(instance.preorder())

    def run():
        from repro.xpath.algebra import NamedSet

        return CompressedEvaluator(instance).evaluate(
            AxisApply("ancestor", AxisApply("ancestor-or-self", NamedSet("leafish")))
        )

    result = run()
    assert len(result.instance.preorder()) == before
    assert result.tree_count() > 0
    benchmark(run)


def _report():
    if not _ROWS:
        return None
    return format_table(
        ["k (conjuncts)", "|V| before", "|V| after", "growth"],
        _ROWS,
        title=(
            f"Theorem 3.6 — worst-case decompression on the depth-{DEPTH} "
            "binary tree (exponential in |Q|, not in the data)"
        ),
    )


register_report(_report)

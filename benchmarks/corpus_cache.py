"""Disk cache for generated benchmark corpora (CI matrix legs share it).

Every benchmark run regenerates its corpora from the ``repro.corpora``
generators — deterministic, but not free: the xmark document at full
scale costs several seconds per run, multiplied by every benchmark and
every Python version in the CI matrix.  This module memoizes the
generated XML on disk, keyed on a SHA-256 over **the generator sources
themselves** plus the generation parameters, so a cache entry can never
outlive a change to the code that produced it — edit any file in
``src/repro/corpora/`` and every key changes.

The cache activates only when ``REPRO_BENCH_CORPUS_CACHE`` names a
directory (CI sets it to a path restored by ``actions/cache``); without
the variable, benchmarks generate exactly as before.  Writes are
atomic (``os.replace`` from a pid-suffixed temp file), so concurrent
benchmark processes sharing one cache directory never read a torn file.

Usage from a benchmark::

    from corpus_cache import cached_xml
    xml = cached_xml("relational", lambda: relational.generate_xml(250, 10,
                     distinct_texts=True).xml, rows=250, cols=10, distinct=True)
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

_FINGERPRINT: str | None = None


def generator_fingerprint() -> str:
    """SHA-256 over every source file in ``repro.corpora`` (cached)."""
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro.corpora

        package_dir = os.path.dirname(os.path.abspath(repro.corpora.__file__))
        digest = hashlib.sha256()
        for name in sorted(os.listdir(package_dir)):
            if not name.endswith(".py"):
                continue
            digest.update(name.encode("utf-8"))
            with open(os.path.join(package_dir, name), "rb") as handle:
                digest.update(handle.read())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def cache_dir() -> str | None:
    """The cache directory, or ``None`` when caching is disabled."""
    return os.environ.get("REPRO_BENCH_CORPUS_CACHE") or None


def cache_key(kind: str, **params) -> str:
    payload = json.dumps(
        {"kind": kind, "params": params, "generators": generator_fingerprint()},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def cached_xml(kind: str, generate, **params) -> str:
    """Return cached XML for ``(kind, params)`` or generate and store it.

    ``generate`` is a zero-argument callable returning the XML string;
    it runs only on a miss (or with caching disabled).
    """
    directory = cache_dir()
    if directory is None:
        return generate()
    path = os.path.join(directory, f"{kind}-{cache_key(kind, **params)}.xml")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError:
        pass
    xml = generate()
    os.makedirs(directory, exist_ok=True)
    scratch = f"{path}.tmp.{os.getpid()}"
    with open(scratch, "w", encoding="utf-8") as handle:
        handle.write(xml)
    os.replace(scratch, path)
    return xml

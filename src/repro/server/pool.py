"""An LRU pool of resident compressed instances with per-entry locks.

The serving layer keeps one *master* instance resident per
``(document, schema-key)`` — for this repository's catalog the schema key
reduces to the sorted tuple of string-containment needles, because every
document is shredded with all of its tags (see
:mod:`repro.server.catalog`).  The pool is the concurrency seam:

* the **pool lock** guards only the LRU bookkeeping (entry lookup,
  recency updates, eviction) and is never held while loading or
  evaluating;
* each entry carries its **own lock**; the first requester of a cold key
  inserts a placeholder entry, releases the pool lock, and loads the
  instance under the entry lock, so concurrent requesters of the same key
  block on that entry alone — the instance is loaded exactly once — and
  requests for other documents proceed in parallel;
* the master instance is never handed out for mutation: callers take the
  entry lock and either ``copy()`` it (snapshot mode — the copy shares
  the master's cached traversal orders until a structural mutation, so a
  steady-state snapshot skips the initial DFS) or evaluate on the entry's
  persistent working instance while still holding the lock.

Eviction drops the pool's reference only; an evaluation holding the entry
keeps it alive until it finishes.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Hashable

from repro.model.instance import Instance

#: ``(document name, sorted string needles)`` — the resident-instance key.
PoolKey = Hashable


class PoolEntry:
    """One resident master instance plus its serialisation lock."""

    __slots__ = ("key", "lock", "instance", "working", "load_seconds", "hits", "load_info")

    def __init__(self, key: PoolKey):
        self.key = key
        self.lock = threading.Lock()
        #: The immutable master (``None`` until the first loader ran).
        self.instance: Instance | None = None
        #: Persistent-mode working instance (lazily forked from the master).
        self.working: Instance | None = None
        self.load_seconds = 0.0
        self.hits = 0
        #: How the cold load was served ("skeleton" mmap vs "chunks"), set
        #: by the service after a successful load; surfaced in ``/stats``.
        self.load_info: dict | None = None


class InstancePool:
    """Bounded LRU of :class:`PoolEntry`, safe for concurrent use."""

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError(f"pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[PoolKey, PoolEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[PoolKey]:
        with self._lock:
            return list(self._entries)

    def load_info(self, key: PoolKey) -> dict | None:
        """How ``key``'s cold load was served, or ``None`` when not resident."""
        with self._lock:
            entry = self._entries.get(key)
            return entry.load_info if entry is not None else None

    def get_or_load(self, key: PoolKey, loader: Callable[[], Instance]) -> PoolEntry:
        """The entry for ``key``, loading its master exactly once.

        ``loader`` runs under the entry lock (not the pool lock), so a slow
        load blocks only same-key requesters.  The returned entry's
        ``instance`` is loaded and must be treated as read-only; take
        ``entry.lock`` before copying or touching ``working``.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = PoolEntry(key)
                self._entries[key] = entry
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                entry.hits += 1
            while len(self._entries) > self.capacity:
                oldest = next(iter(self._entries))
                if oldest == key:  # never evict the entry being requested
                    break
                del self._entries[oldest]
                self.evictions += 1
        with entry.lock:
            if entry.instance is None:
                started = time.perf_counter()
                try:
                    from repro.server.resilience import FAULTS

                    FAULTS.fire("pool.load", key=key)
                    instance = loader()
                except BaseException:
                    # A failed load (deadline-cancelled, corrupt chunks, disk
                    # error) must not leave a poisoned placeholder squatting
                    # in the LRU: drop it (if eviction didn't already) so the
                    # next requester gets a clean retry instead of inheriting
                    # an instance-less entry that counts against capacity.
                    with self._lock:
                        if self._entries.get(key) is entry:
                            del self._entries[key]
                    raise
                instance.preorder()  # warm the traversal cache once, pre-share
                entry.load_seconds = time.perf_counter() - started
                entry.instance = instance
        return entry

    def evict(self, predicate: Callable[[PoolKey], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; return count."""
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            self.evictions += len(doomed)
            return len(doomed)

    def stats(self) -> dict:
        with self._lock:
            bytes_mapped = 0
            skeleton_loads = 0
            for entry in self._entries.values():
                info = entry.load_info
                if info and info.get("format") == "skeleton":
                    skeleton_loads += 1
                    bytes_mapped += info.get("bytes_mapped", 0)
            return {
                "capacity": self.capacity,
                "resident": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "skeleton_loads": skeleton_loads,
                "bytes_mapped": bytes_mapped,
            }

"""Incremental DAG maintenance vs the shred-from-scratch oracle.

Every scenario applies a mutation batch through
:func:`repro.mutation.apply.apply_mutations` and re-shreds the edited
text from scratch; the incremental result must be *indistinguishable*:
same minimized DAG size, byte-equal statistics, and byte-identical
query results on the compressed instance.
"""

import pytest

from repro.compress.stats import DocumentStats
from repro.engine.evaluator import CompressedEvaluator
from repro.errors import MutationError
from repro.mutation.apply import apply_mutations
from repro.mutation.ops import Mutation, as_mutations
from repro.skeleton.loader import load

BIB = (
    "<bib>"
    "<book><title>t1</title><author>a1</author><author>a2</author></book>"
    "<paper><title>t2</title><author>a3</author></paper>"
    "<paper><title>t3</title><author>a4</author></paper>"
    "</bib>"
)

QUERIES = [
    "//author",
    "//paper/title",
    "/bib/book",
    "//paper[author]",
    "//title/following-sibling::author",
]


def check_against_oracle(text, mutations, attributes="ignore", queries=QUERIES):
    """Apply incrementally, re-shred from scratch, assert indistinguishable."""
    base = load(text, tags=None, attributes=attributes).instance
    outcome = apply_mutations(base, text, as_mutations(mutations), attributes=attributes)
    fresh = load(outcome.text, tags=None, attributes=attributes).instance

    assert outcome.instance.num_vertices == fresh.num_vertices
    assert outcome.instance.num_edge_entries == fresh.num_edge_entries

    oracle_stats = DocumentStats.from_instance(
        fresh, text=outcome.text, complete_tags=True
    )
    assert outcome.stats.tree_nodes == oracle_stats.tree_nodes
    assert outcome.stats.dag_vertices == oracle_stats.dag_vertices

    # A delete may leave a now-unpopulated tag set behind (the schema
    # keeps the name; the set is provably empty either way) — the
    # comparable content is the non-empty sets.
    def populated(stats):
        return {
            name: cardinalities
            for name, cardinalities in stats.sets.items()
            if cardinalities.dag_count or cardinalities.tree_count
        }

    assert populated(outcome.stats) == populated(oracle_stats)
    assert outcome.stats.chars == oracle_stats.chars
    assert outcome.stats.total_chars == oracle_stats.total_chars

    # A fresh shred of the edited text has no entry at all for a tag the
    # edit removed, while the incremental instance keeps the (empty) set;
    # align the schemas so every query runs on both.
    for name in outcome.instance.schema:
        fresh.ensure_set(name)
    for query in queries:
        mine = CompressedEvaluator(outcome.instance).evaluate(query)
        oracle = CompressedEvaluator(fresh).evaluate(query)
        assert sorted(mine.tree_paths()) == sorted(oracle.tree_paths()), query
    return outcome


def test_append_child_leaf():
    outcome = check_against_oracle(
        BIB, [{"op": "append_child", "path": [0], "xml": "<author>a5</author>"}]
    )
    assert outcome.applied == 1
    assert outcome.ops == {"append_child": 1}


def test_append_child_root():
    check_against_oracle(
        BIB,
        [{"op": "append_child", "path": [],
          "xml": "<paper><title>t4</title><author>a1</author></paper>"}],
    )


def test_delete_subtree():
    outcome = check_against_oracle(BIB, [{"op": "delete_subtree", "path": [1]}])
    assert "t2" not in outcome.text


def test_replace_subtree():
    check_against_oracle(
        BIB,
        [{"op": "replace_subtree", "path": [2],
          "xml": "<book><title>t9</title><author>a9</author></book>"}],
    )


def test_replace_root_element():
    check_against_oracle(
        BIB, [{"op": "replace_subtree", "path": [], "xml": "<bib><empty/></bib>"}]
    )


def test_batch_is_ordered_and_atomic():
    outcome = check_against_oracle(
        BIB,
        [
            {"op": "append_child", "path": [], "xml": "<paper><author>a1</author></paper>"},
            {"op": "delete_subtree", "path": [0]},
            {"op": "replace_subtree", "path": [2, 0], "xml": "<author>swap</author>"},
        ],
    )
    assert outcome.applied == 3
    assert outcome.ops == {"append_child": 1, "delete_subtree": 1, "replace_subtree": 1}


def test_attributes_as_nodes_skip_ordinals():
    text = "<r><x k='v'><y/></x></r>"
    # Path [0, 0] addresses <y>: the @k attribute node must not consume
    # an element ordinal.
    check_against_oracle(
        text,
        [{"op": "replace_subtree", "path": [0, 0], "xml": "<z m='n'/>"}],
        attributes="nodes",
        queries=["//x", "//z", "//@m", "//x/z"],
    )


def test_base_instance_is_not_mutated():
    base = load(BIB, tags=None).instance
    before = (base.num_vertices, base.num_edge_entries)
    apply_mutations(
        base, BIB, as_mutations([{"op": "delete_subtree", "path": [0]}])
    )
    assert (base.num_vertices, base.num_edge_entries) == before


def test_bad_path_rejected():
    base = load(BIB, tags=None).instance
    with pytest.raises(MutationError):
        apply_mutations(
            base, BIB, as_mutations([{"op": "delete_subtree", "path": [99]}])
        )


def test_malformed_fragment_rejected():
    base = load(BIB, tags=None).instance
    with pytest.raises(MutationError):
        apply_mutations(
            base, BIB,
            as_mutations([{"op": "append_child", "path": [], "xml": "<oops>"}]),
        )


def test_mutation_validation():
    with pytest.raises(MutationError):
        Mutation("rename", (0,))
    with pytest.raises(MutationError):
        Mutation("append_child", (0,))  # inserting op needs a fragment
    with pytest.raises(MutationError):
        Mutation("delete_subtree", (0,), xml="<x/>")  # delete takes none
    with pytest.raises(MutationError):
        as_mutations([])  # empty batch is a refused no-op

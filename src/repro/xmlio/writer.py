"""Serialisation of the DOM back to XML text.

The element walk is iterative (explicit stack), so arbitrarily deep
documents — TreeBank-like parse trees can nest hundreds of levels — never
hit Python's recursion limit.
"""

from __future__ import annotations

from typing import IO

from repro.xmlio.dom import Document, Element
from repro.xmlio.escape import escape_attribute, escape_text


def write_element(element: Element, out: list[str], indent: int | None = None, depth: int = 0) -> None:
    """Append the serialisation of ``element`` to ``out`` (a string list)."""
    # Stack actions: ("open", Element), ("close", Element), ("text", str);
    # the int is the nesting level used for pretty-printing.
    stack: list[tuple[str, object, int]] = [("open", element, depth)]
    while stack:
        action, node, level = stack.pop()
        if action == "text":
            out.append(escape_text(node))
            continue
        if action == "close":
            only_text = all(isinstance(child, str) for child in node.children)
            if indent is not None and not only_text:
                out.append("\n" + " " * (indent * level))
            out.append(f"</{node.tag}>")
            continue
        pad = "" if indent is None else "\n" + " " * (indent * level)
        attrs = "".join(
            f' {name}="{escape_attribute(value)}"'
            for name, value in node.attributes.items()
        )
        if not node.children:
            out.append(f"{pad}<{node.tag}{attrs}/>")
            continue
        out.append(f"{pad}<{node.tag}{attrs}>")
        stack.append(("close", node, level))
        for child in reversed(node.children):
            if isinstance(child, str):
                stack.append(("text", child, level + 1))
            else:
                stack.append(("open", child, level + 1))


def serialize(root: Element | Document, indent: int | None = None, declaration: bool = True) -> str:
    """Serialise an element (or document) to XML text.

    ``indent`` pretty-prints with that many spaces per level; ``None`` emits
    the most compact form.  Round-trips with :func:`repro.xmlio.dom.parse_document`
    up to insignificant whitespace.
    """
    element = root.root if isinstance(root, Document) else root
    out: list[str] = []
    if declaration:
        out.append('<?xml version="1.0" encoding="UTF-8"?>')
    write_element(element, out, indent)
    return "".join(out).lstrip("\n") if indent is not None else "".join(out)


def write_document(root: Element | Document, stream: IO[str], indent: int | None = None) -> None:
    """Serialise to a text stream (used by the corpus CLI)."""
    stream.write(serialize(root, indent=indent))
    stream.write("\n")

"""Core XPath: lexer, parser, AST, node-set algebra and compiler."""

from repro.xpath.algebra import (
    AlgebraExpr,
    AllNodes,
    AxisApply,
    ContextSet,
    Difference,
    Intersect,
    NamedSet,
    RootFilter,
    RootSet,
    Union,
    uses_only_upward_axes,
)
from repro.xpath.ast import AXES, INVERSE_AXIS, UPWARD_AXES, LocationPath, Step
from repro.xpath.compiler import compile_query, required_strings, required_tags
from repro.xpath.parser import parse_query

__all__ = [
    "AXES",
    "AlgebraExpr",
    "AllNodes",
    "AxisApply",
    "ContextSet",
    "Difference",
    "INVERSE_AXIS",
    "Intersect",
    "LocationPath",
    "NamedSet",
    "RootFilter",
    "RootSet",
    "Step",
    "UPWARD_AXES",
    "Union",
    "compile_query",
    "parse_query",
    "required_strings",
    "required_tags",
    "uses_only_upward_axes",
]

"""The end-to-end pipeline of section 4: document + query -> result.

Given a query, only the tags and string constraints it mentions are needed
in the instance schema; :func:`load_for_query` performs the paper's one-scan
extraction over exactly that schema, and :func:`query` runs the full
pipeline.  :class:`Engine` caches per-schema instances for a document so
repeated queries with the same leaf sets skip the parse (the paper re-parses
per query; both behaviours are measurable in the benchmarks).

For *workloads* — the paper's experiments always run a mix of queries
against one document — :meth:`Engine.query_batch` loads one instance over
the **union** of the batch's schemas (one scan covers all queries) and
evaluates the whole mix on one shared working copy through
:class:`repro.engine.batch.BatchEvaluator`, reusing identical algebra
subtrees across queries.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

from repro.compress.stats import DocumentStats
from repro.model.instance import Instance
from repro.skeleton.loader import LoadResult, load
from repro.engine.evaluator import CompressedEvaluator
from repro.engine.results import BatchResult, QueryResult
from repro.xpath.algebra import AlgebraExpr
from repro.xpath.compiler import compile_query, required_strings, required_tags
from repro.xpath.optimizer import OptimizationResult, optimize as optimize_plan
from repro.xpath.parser import parse_query

#: A schema key: (sorted tags, sorted string constraints).
SchemaKey = tuple[tuple[str, ...], tuple[str, ...]]


def _load_for_key(text: str, key: SchemaKey) -> LoadResult:
    attributes = "nodes" if any(tag.startswith("@") for tag in key[0]) else "ignore"
    return load(text, tags=list(key[0]), strings=list(key[1]), attributes=attributes)


def load_for_query(text: str, query_text: str) -> LoadResult:
    """One-scan load of exactly the schema ``query_text`` needs (section 4).

    Queries with ``@name`` steps automatically switch the loader into
    attribute-node mode (the extension of the paper's attribute-free model).
    """
    tags = sorted(required_tags(query_text))
    strings = sorted(required_strings(query_text))
    return _load_for_key(text, (tuple(tags), tuple(strings)))


def load_for_queries(text: str, queries: Iterable) -> LoadResult:
    """One-scan load over the schema **union** of a whole query batch.

    A single extraction pass covers every query in the workload: the tag and
    string sets are the unions of what each query mentions, so one instance
    serves the entire mix (the batch engine's "one load, N queries").
    ``queries`` may be query texts or already-parsed ASTs (pass ASTs to
    avoid parsing each text twice when you also compile them).
    """
    tags: set[str] = set()
    strings: set[str] = set()
    for query in queries:
        ast = parse_query(query) if isinstance(query, str) else query
        tags |= required_tags(ast)
        strings |= required_strings(ast)
    return _load_for_key(text, (tuple(sorted(tags)), tuple(sorted(strings))))


def query(
    source: str | Instance,
    query_text: str,
    context: str | None = None,
    axes: str = "functional",
) -> QueryResult:
    """Evaluate ``query_text`` against XML text or a pre-loaded instance.

    When ``source`` is XML text, the document is parsed into a compressed
    instance over the query's schema first (the measured pipeline of
    Figure 7); when it is an :class:`Instance`, its schema must already
    contain the sets the query mentions.
    """
    if isinstance(source, Instance):
        instance = source
    else:
        instance = load_for_query(source, query_text).instance
    evaluator = CompressedEvaluator(instance, context=context, axes=axes)
    return evaluator.evaluate(query_text)


def query_batch(
    source: str | Instance,
    query_texts: Sequence[str],
    context: str | None = None,
    axes: str = "functional",
) -> BatchResult:
    """Evaluate a whole query mix against XML text or a pre-loaded instance.

    One load (over the union schema) and one working copy serve every query;
    identical algebra subtrees across the mix are evaluated once.  See
    :class:`repro.engine.batch.BatchEvaluator`.
    """
    from repro.engine.batch import BatchEvaluator

    if isinstance(source, Instance):
        instance = source
    else:
        instance = load_for_queries(source, query_texts).instance
    evaluator = BatchEvaluator(instance, context=context, axes=axes)
    return evaluator.evaluate_batch(query_texts)


class Engine:
    """A document holder answering many queries.

    ``reparse_per_query=True`` reproduces the paper's experimental setup
    (re-extract a fresh minimal instance for each query's schema);
    ``False`` caches instances per schema.

    Independently of instance caching, the engine keeps a *compiled-algebra
    cache* keyed by query text: parsing and compiling a query happens once,
    and repeats of the same query string go straight to evaluation.  The
    schema key (required tags/strings) is derived from the compile step and
    cached alongside, so a repeated query does not re-parse its text at all.
    The cache is a true LRU — a hit refreshes the entry, so under churn the
    hottest query texts are the last to be evicted.

    ``optimize`` enables the cost-based plan optimizer
    (:mod:`repro.xpath.optimizer`): document statistics are collected from
    each loaded instance (once per schema), compiled plans are rewritten
    against them, and evaluation runs with the dynamic short-circuit on.
    The default (``None``) resolves to ``not reparse_per_query``: the
    re-extract-per-query setup stays the paper-faithful unoptimized
    pipeline, the cached setup optimizes.

    **`last_load` contract:** after every :meth:`query` /
    :meth:`query_batch` / :meth:`instance_for` call, ``last_load`` is the
    :class:`LoadResult` describing the instance that call used — even when
    the instance came from the per-schema cache, in which case
    ``last_load_cached`` is ``True`` and ``last_load.parse_seconds`` is the
    cost paid when that schema was *first* loaded, not by this call.
    """

    def __init__(
        self,
        text: str,
        reparse_per_query: bool = True,
        axes: str = "functional",
        optimize: bool | None = None,
    ):
        self._text = text
        self._reparse = reparse_per_query
        self._axes = axes
        self._optimize = (not reparse_per_query) if optimize is None else optimize
        self._cache: dict[SchemaKey, LoadResult] = {}
        self._compiled: OrderedDict[str, tuple[AlgebraExpr, SchemaKey]] = OrderedDict()
        self._stats_cache: dict[SchemaKey, DocumentStats] = {}
        self._optimized: OrderedDict[str, OptimizationResult] = OrderedDict()
        self.last_load: LoadResult | None = None
        #: True when the last load was served from the per-schema cache.
        self.last_load_cached: bool = False

    @property
    def text(self) -> str:
        """The document text this engine answers queries over."""
        return self._text

    @property
    def axes(self) -> str:
        """The axis implementation (``"functional"`` or ``"inplace"``)."""
        return self._axes

    @property
    def reparse_per_query(self) -> bool:
        """True when the paper's re-extract-per-query setup is reproduced."""
        return self._reparse

    @property
    def optimize(self) -> bool:
        """True when compiled plans are rewritten by the cost-based optimizer."""
        return self._optimize

    def compiled(self, query_text: str) -> AlgebraExpr:
        """The compiled algebra of ``query_text`` (cached per query text)."""
        return self._compiled_entry(query_text)[0]

    def compiled_entry(self, query_text: str) -> tuple[AlgebraExpr, SchemaKey]:
        """``(compiled algebra, schema key)`` — the full per-text cache entry.

        The seam :class:`repro.api.PreparedQuery` is built from: both
        derivations of one parse, LRU-cached by query text.
        """
        return self._compiled_entry(query_text)

    def adopt_compiled(self, query_text: str, expr: AlgebraExpr, key: SchemaKey) -> None:
        """Seed the compiled-algebra cache with an externally-compiled query.

        Lets a :class:`repro.api.PreparedQuery` compiled elsewhere feed this
        engine without re-parsing its text; an existing entry is kept (and
        refreshed, like any cache hit).
        """
        if query_text in self._compiled:
            self._compiled.move_to_end(query_text)
            return
        while len(self._compiled) >= self.COMPILED_CACHE_LIMIT:
            self._compiled.popitem(last=False)
        self._compiled[query_text] = (expr, key)

    def instance_cached(self, query_text: str) -> bool:
        """Would :meth:`query` serve this text's schema from the cache?"""
        if self._reparse:
            return False
        return self._compiled_entry(query_text)[1] in self._cache

    #: Bound on distinct query texts kept compiled (least recently *used*
    #: evicted first), so a long-lived engine fed generated queries cannot
    #: grow without limit.
    COMPILED_CACHE_LIMIT = 1024

    def _compiled_entry(self, query_text: str) -> tuple[AlgebraExpr, SchemaKey]:
        entry = self._compiled.get(query_text)
        if entry is not None:
            # True LRU: a hit refreshes recency, so hot queries survive churn.
            self._compiled.move_to_end(query_text)
            return entry
        ast = parse_query(query_text)  # one parse feeds all three derivations
        expr = compile_query(ast)
        key = (
            tuple(sorted(required_tags(ast))),
            tuple(sorted(required_strings(ast))),
        )
        entry = (expr, key)
        while len(self._compiled) >= self.COMPILED_CACHE_LIMIT:
            self._compiled.popitem(last=False)
        self._compiled[query_text] = entry
        return entry

    def _instance_for_key(self, key: SchemaKey) -> Instance:
        if not self._reparse:
            cached = self._cache.get(key)
            if cached is not None:
                # Record the hit: last_load describes the instance this call
                # returns (its parse cost was paid when first loaded).
                self.last_load = cached
                self.last_load_cached = True
                return cached.instance
        result = _load_for_key(self._text, key)
        self.last_load = result
        self.last_load_cached = False
        if not self._reparse:
            self._cache[key] = result
        return result.instance

    def instance_for(self, query_text: str) -> Instance:
        """The compressed instance over the query's schema (maybe cached)."""
        return self._instance_for_key(self._compiled_entry(query_text)[1])

    def _stats_for(self, key: SchemaKey, instance: Instance) -> DocumentStats:
        """Document statistics for one schema, collected once per key.

        Tree-level quantities (per-tag tree counts, depth/fanout/subtree
        aggregates) do not depend on which schema the instance was
        minimised over, so caching by key is sound even in reparse mode
        where the instance object itself is fresh each call.
        """
        cached = self._stats_cache.get(key)
        if cached is None:
            cached = DocumentStats.from_instance(instance, text=self._text)
            self._stats_cache[key] = cached
        return cached

    def _optimized_for(
        self, query_text: str, expr: AlgebraExpr, key: SchemaKey, instance: Instance
    ) -> OptimizationResult:
        entry = self._optimized.get(query_text)
        if entry is not None:
            self._optimized.move_to_end(query_text)
            return entry
        entry = optimize_plan(expr, self._stats_for(key, instance))
        while len(self._optimized) >= self.COMPILED_CACHE_LIMIT:
            self._optimized.popitem(last=False)
        self._optimized[query_text] = entry
        return entry

    def optimized_entry(self, query_text: str) -> OptimizationResult | None:
        """The optimizer's result for ``query_text`` (``None`` if disabled).

        Loads (or reuses) the query's instance to collect statistics — the
        same object :meth:`query` would evaluate on — so explain output
        matches what evaluation actually runs.
        """
        if not self._optimize:
            return None
        expr, key = self._compiled_entry(query_text)
        instance = self._instance_for_key(key)
        return self._optimized_for(query_text, expr, key, instance)

    def query(self, query_text: str, context: str | None = None) -> QueryResult:
        expr, key = self._compiled_entry(query_text)
        instance = self._instance_for_key(key)
        short_circuit = False
        if self._optimize:
            expr = self._optimized_for(query_text, expr, key, instance).expr
            short_circuit = True
        evaluator = CompressedEvaluator(
            instance, context=context, axes=self._axes, short_circuit=short_circuit
        )
        return evaluator.evaluate(expr)

    def query_batch(
        self, query_texts: Sequence[str], context: str | None = None
    ) -> BatchResult:
        """Evaluate a workload of queries over **one** shared working instance.

        One load covers the whole batch (the instance is extracted — or
        served from the per-schema cache — over the *union* of the batch's
        tags and strings), one ``copy()`` is paid in total, and identical
        algebra subtrees across the mix materialise their selection once
        (see :class:`repro.engine.batch.BatchEvaluator`).  Per-query results
        are snapshotted as durable ``#q<i>`` selections, so every result
        stays valid no matter which later query partially decompressed the
        shared instance.
        """
        from repro.engine.batch import BatchEvaluator

        entries = [self._compiled_entry(text) for text in query_texts]
        tags: set[str] = set()
        strings: set[str] = set()
        for _, (entry_tags, entry_strings) in entries:
            tags.update(entry_tags)
            strings.update(entry_strings)
        key: SchemaKey = (tuple(sorted(tags)), tuple(sorted(strings)))
        instance = self._instance_for_key(key)
        exprs = [expr for expr, _ in entries]
        short_circuit = False
        if self._optimize:
            exprs = [
                self._optimized_for(text, expr, key, instance).expr
                for text, expr in zip(query_texts, exprs)
            ]
            short_circuit = True
        evaluator = BatchEvaluator(
            instance, context=context, axes=self._axes, short_circuit=short_circuit
        )
        return evaluator.evaluate_batch(exprs)

    def explain(self, query_text: str) -> str:
        """Render the compiled algebra tree (the Figure 3 view of a query)."""
        return self.compiled(query_text).render()


# Re-exported via the top-level package for the quick-start API.
def load_instance(text: str, query_text: str | None = None, **kwargs) -> Instance:
    """Load ``text`` as a compressed instance.

    With ``query_text`` the schema is derived from the query (section 4);
    otherwise pass ``tags=`` / ``strings=`` through to the skeleton loader.
    """
    if query_text is not None:
        return load_for_query(text, query_text).instance
    return load(text, **kwargs).instance

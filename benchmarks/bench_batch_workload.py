#!/usr/bin/env python
"""Batch workload engine vs sequential evaluation of the Figure 7 query mix.

The paper's experiments always run a *mix* of five queries per corpus.  This
benchmark evaluates that mix two ways over three contrasting corpora (the
maximally shared binary tree, the run-length relational table, and XMark):

* **sequential** — the paper's setup: a fresh ``Engine.query`` per query,
  i.e. one schema extraction scan and one working copy *per query*;
* **batched** — ``Engine.query_batch``: one extraction scan over the union
  of the mix's schemas, one shared working copy, and cross-query reuse of
  identical algebra subtrees (the common-subexpression cache).

Both measure the end-to-end cost of answering the whole mix (load +
evaluate + snapshot), and additionally the *evaluation-only* cost over a
pre-loaded union instance (N copies vs 1 copy + sharing), so the report
separates the one-scan win from the shared-evaluation win.  Every run first
verifies that batched and sequential selections are identical (decoded tree
counts always; full edge-path sets when the tree is small enough to
enumerate).

Results go to ``BENCH_batch_workload.json`` at the repository root.  The
run fails when the end-to-end speedup drops below ``--min-speedup``
(default 1.5 on at least one corpus and 1.0 on every corpus; ``--smoke``
uses small corpora for CI and fails on any slowdown or divergence).

Usage::

    PYTHONPATH=src python benchmarks/bench_batch_workload.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from corpus_cache import cached_xml
from repro.corpora import binary_tree, relational
from repro.corpora.registry import CORPORA
from repro.engine.batch import BatchEvaluator
from repro.engine.evaluator import CompressedEvaluator
from repro.engine.pipeline import Engine, load_for_queries

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

# The same per-corpus mixes as bench_query_throughput.py (Appendix A style).
BINARY_TREE_QUERIES = {
    "Q1": "/a/b/a/b",
    "Q2": "//b[a]",
    "Q3": "/descendant::a[b/b]",
    "Q4": "//a/following-sibling::b",
    "Q5": "//b/preceding-sibling::a",
}

RELATIONAL_QUERIES = {
    "Q1": "/table/row/col0",
    "Q2": '//row[col1["r1c1"]]/col2',
    "Q3": "//col3/following-sibling::col5",
    "Q4": '//row[col0["r0c0"]]',
    "Q5": "//col1/preceding-sibling::col0",
}

CORPUS_NAMES = ("binary-tree", "relational", "xmark")

#: Above this many *total* tree nodes the full edge-path equality check is
#: skipped — enumeration walks the whole unfolded tree regardless of how
#: small the selection is, and is exponential in general.  Decoded tree
#: counts are still compared.
PATH_CHECK_LIMIT = 200_000


def corpus_xml(name: str, smoke: bool) -> str:
    if name == "binary-tree":
        depth = 8 if smoke else 12
        return cached_xml(
            "binary-tree", lambda: binary_tree.generate_xml(depth=depth).xml, depth=depth
        )
    if name == "relational":
        rows, cols = (60, 8) if smoke else (400, 12)
        return cached_xml(
            "relational",
            lambda: relational.generate_xml(rows, cols, distinct_texts=True).xml,
            rows=rows,
            cols=cols,
            distinct=True,
        )
    if name == "xmark":
        info = CORPORA["xmark"]
        scale = max(1, int(info.default_scale * (0.1 if smoke else 0.5)))
        return cached_xml("xmark", lambda: info.generate(scale, 0).xml, scale=scale, seed=0)
    raise ValueError(name)


def corpus_queries(name: str) -> dict[str, str]:
    if name == "binary-tree":
        return BINARY_TREE_QUERIES
    if name == "relational":
        return RELATIONAL_QUERIES
    from repro.bench.queries import queries_for

    return queries_for(name)


def best_time(run, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def verify_identical(xml: str, mix: list[str]) -> list[dict]:
    """Batched and sequential selections must decode identically."""
    from repro.model.paths import tree_size

    batch = Engine(xml).query_batch(mix)
    # Splits preserve the unfolded tree, so the final instance's tree size
    # is the document's; enumeration cost is bounded by it, not by how many
    # nodes a query selects.
    enumerable = tree_size(batch.instance) <= PATH_CHECK_LIMIT
    checks = []
    for query_text, batched in zip(mix, batch):
        solo = Engine(xml).query(query_text)
        if batched.tree_count() != solo.tree_count():
            raise AssertionError(
                f"{query_text}: batch decoded {batched.tree_count()} tree nodes, "
                f"sequential {solo.tree_count()}"
            )
        paths_checked = False
        if enumerable:
            if set(batched.tree_paths()) != set(solo.tree_paths()):
                raise AssertionError(f"{query_text}: decoded edge-path sets diverge")
            paths_checked = True
        checks.append(
            {
                "query": query_text,
                "tree_count": batched.tree_count(),
                "paths_checked": paths_checked,
            }
        )
    return checks


def measure(corpus: str, smoke: bool) -> dict:
    xml = corpus_xml(corpus, smoke)
    mix = list(corpus_queries(corpus).values())
    checks = verify_identical(xml, mix)
    repeats = 2 if smoke else 3

    # End to end: answer the whole mix starting from the XML text.
    def run_sequential():
        engine = Engine(xml)  # reparse_per_query=True: the paper's setup
        for query_text in mix:
            engine.query(query_text)

    def run_batched():
        Engine(xml).query_batch(mix)

    sequential_seconds = best_time(run_sequential, repeats)
    batched_seconds = best_time(run_batched, repeats)

    # Evaluation only: both sides share one pre-loaded union instance.
    union_instance = load_for_queries(xml, mix).instance

    def run_sequential_eval():
        for query_text in mix:
            CompressedEvaluator(union_instance, copy=True).evaluate(query_text)

    def run_batched_eval():
        BatchEvaluator(union_instance, copy=True).evaluate_batch(mix)

    sequential_eval = best_time(run_sequential_eval, repeats)
    batched_eval = best_time(run_batched_eval, repeats)

    stats = BatchEvaluator(union_instance, copy=True).evaluate_batch(mix).stats
    row = {
        "corpus": corpus,
        "queries": len(mix),
        "instance_vertices": union_instance.num_vertices,
        "instance_edge_entries": union_instance.num_edge_entries,
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "speedup": sequential_seconds / batched_seconds if batched_seconds else math.inf,
        "sequential_eval_seconds": sequential_eval,
        "batched_eval_seconds": batched_eval,
        "eval_speedup": sequential_eval / batched_eval if batched_eval else math.inf,
        "algebra_nodes_total": stats.nodes_total,
        "algebra_nodes_reused": stats.nodes_reused,
        "sharing_ratio": stats.sharing_ratio,
        "checks": checks,
    }
    print(
        f"  {corpus:12s}  end-to-end seq {sequential_seconds * 1000:9.2f} ms  "
        f"batch {batched_seconds * 1000:9.2f} ms  speedup {row['speedup']:5.2f}x   "
        f"eval-only {row['eval_speedup']:5.2f}x  shared {100 * stats.sharing_ratio:3.0f}%"
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small corpora, CI smoke mode")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail when the best end-to-end speedup is below this "
        "(default: 1.5, or 1.0 with --smoke)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_batch_workload.json"),
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    min_speedup = args.min_speedup if args.min_speedup is not None else (
        1.0 if args.smoke else 1.5
    )

    print(f"batch workload: query_batch vs sequential Engine.query "
          f"({'smoke' if args.smoke else 'full'})")
    rows = [measure(corpus, args.smoke) for corpus in CORPUS_NAMES]

    best = max(row["speedup"] for row in rows)
    worst = min(row["speedup"] for row in rows)
    report = {
        "benchmark": "batch_workload",
        "mode": "smoke" if args.smoke else "full",
        "baseline": "sequential Engine.query (one load + one copy per query)",
        "corpora": CORPUS_NAMES,
        "rows": rows,
        "best_speedup": best,
        "worst_speedup": worst,
        "min_speedup_required": min_speedup,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"\nbest end-to-end speedup: {best:.2f}x  worst: {worst:.2f}x  "
          f"(required best >= {min_speedup:.2f}x, worst >= 1.0x)")
    print(f"wrote {args.output}")
    if best < min_speedup or worst < 1.0:
        print("FAIL: batched evaluation too slow relative to sequential", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

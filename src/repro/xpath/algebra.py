"""The node-set algebra of Core XPath (section 3.1, Figure 3).

A query compiles to an expression tree over:

* leaf node sets: the root singleton, the full vertex set, named sets from
  the schema (tags / string constraints / user context),
* the binary set operations (union, intersection, difference),
* axis applications ``chi(S)``,
* the root-filter ``V|root(S)`` (all of V if the root is in S, else empty).

Axis application uses *forward-image* semantics as in Gottlob-Koch-Pichler:
``n in child(S)`` iff the parent of ``n`` is in ``S`` — this is what lets
predicates be evaluated by reversing their paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xpath.ast import AXES


class AlgebraExpr:
    """Base class of algebra expressions."""

    __slots__ = ()

    def children(self) -> tuple["AlgebraExpr", ...]:
        return ()

    def label(self) -> str:
        raise NotImplementedError

    def render(self, indent: str = "") -> str:
        """ASCII rendering of the expression tree (Figure 3 style)."""
        lines = [indent + self.label()]
        for child in self.children():
            lines.append(child.render(indent + "    "))
        return "\n".join(lines)

    def size(self) -> int:
        """Number of operator/leaf nodes — the |Q| of Theorem 3.6."""
        return 1 + sum(child.size() for child in self.children())

    def structural_key(self) -> tuple:
        """A canonical, hashable key identifying this subtree up to structure.

        Two expressions have equal keys iff they denote the same algebra
        subtree (same operators, axes, and set names in the same shape) —
        the sharing unit of the batch engine's common-subexpression cache.
        Keys are nested tuples ``(label, child_key, ...)``, so no string
        parsing ambiguity can conflate distinct trees; the key is computed
        once per node and cached (expressions are immutable).
        """
        key = getattr(self, "_structural_key", None)
        if key is None:
            key = (self.label(), *(child.structural_key() for child in self.children()))
            # Subclasses are frozen dataclasses; bypass their setattr guard.
            object.__setattr__(self, "_structural_key", key)
        return key


@dataclass(frozen=True)
class RootSet(AlgebraExpr):
    """The singleton {root}."""

    def label(self) -> str:
        return "{root}"


@dataclass(frozen=True)
class AllNodes(AlgebraExpr):
    """The full vertex set V."""

    def label(self) -> str:
        return "V"


@dataclass(frozen=True)
class ContextSet(AlgebraExpr):
    """The user-supplied context selection (relative queries start here)."""

    def label(self) -> str:
        return "context"


@dataclass(frozen=True)
class EmptySet(AlgebraExpr):
    """The empty selection — only ever produced by the optimizer.

    The compiler never emits this node: it appears when the statistics
    catalog proves a leaf set (or, through propagation, a whole branch)
    selects nothing (:mod:`repro.xpath.optimizer`).  Evaluation
    materialises a fresh empty selection without touching the structure.
    """

    def label(self) -> str:
        return "∅"


@dataclass(frozen=True)
class NamedSet(AlgebraExpr):
    """A schema set: a tag set ``L_t`` or a string-constraint set."""

    name: str

    def label(self) -> str:
        return f"L[{self.name}]"


@dataclass(frozen=True)
class AxisApply(AlgebraExpr):
    """``chi(S)`` for one of the Core XPath axes."""

    axis: str
    operand: AlgebraExpr

    def __post_init__(self):
        if self.axis not in AXES:
            raise ValueError(f"unknown axis {self.axis!r}")

    def children(self):
        return (self.operand,)

    def label(self) -> str:
        return self.axis


@dataclass(frozen=True)
class Union(AlgebraExpr):
    left: AlgebraExpr
    right: AlgebraExpr

    def children(self):
        return (self.left, self.right)

    def label(self) -> str:
        return "∪"


@dataclass(frozen=True)
class Intersect(AlgebraExpr):
    left: AlgebraExpr
    right: AlgebraExpr

    def children(self):
        return (self.left, self.right)

    def label(self) -> str:
        return "∩"


@dataclass(frozen=True)
class Difference(AlgebraExpr):
    left: AlgebraExpr
    right: AlgebraExpr

    def children(self):
        return (self.left, self.right)

    def label(self) -> str:
        return "−"


@dataclass(frozen=True)
class RootFilter(AlgebraExpr):
    """``V|root(S)``: all of V if root in S, else the empty set (section 3.1)."""

    operand: AlgebraExpr

    def children(self):
        return (self.operand,)

    def label(self) -> str:
        return "V|root"


def named_sets(expr: AlgebraExpr) -> set[str]:
    """All schema set names referenced by ``expr``."""
    found: set[str] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, NamedSet):
            found.add(node.name)
        stack.extend(node.children())
    return found


def axis_applications(expr: AlgebraExpr) -> list[str]:
    """All axes applied in ``expr`` (with repetition), in evaluation order."""
    out: list[str] = []

    def visit(node: AlgebraExpr) -> None:
        for child in node.children():
            visit(child)
        if isinstance(node, AxisApply):
            out.append(node.axis)

    visit(expr)
    return out


def uses_only_upward_axes(expr: AlgebraExpr) -> bool:
    """True if Corollary 3.7 applies: evaluation will never decompress."""
    from repro.xpath.ast import UPWARD_AXES

    return all(axis in UPWARD_AXES for axis in axis_applications(expr))


def is_split_free(expr: AlgebraExpr) -> bool:
    """True when evaluating ``expr`` can never split a vertex.

    Upward axes and ``self`` are in-place mask passes (Proposition 3.3);
    everything else — downward and sibling axes, and the ``following`` /
    ``preceding`` compositions that contain them — may rebuild the
    instance.  The optimizer (and the evaluator's short-circuit mode) may
    only *skip* split-free subtrees: skipping a possibly-splitting one
    would change the final instance's vertex partition, and with it the
    DAG-vertex counts reported for other selections on the same instance.
    Cached per node (expressions are immutable), same trick as
    :meth:`AlgebraExpr.structural_key`.
    """
    from repro.xpath.ast import UPWARD_AXES

    cached = getattr(expr, "_split_free", None)
    if cached is None:
        cached = (
            not isinstance(expr, AxisApply) or expr.axis in UPWARD_AXES
        ) and all(is_split_free(child) for child in expr.children())
        object.__setattr__(expr, "_split_free", cached)
    return cached

"""Figure 6: degree of compression of the benchmarked corpora.

Reproduces the paper's compression table: for each corpus, the skeleton is
compressed with tags ignored ("-") and with all tags included ("+"), and we
report |V^T|, |V^M(T)|, |E^M(T)| and the ratio |E^M|/|E^T| next to the
paper's measured ratio.  The benchmark timing measures the full one-scan
parse+compress pipeline (the paper's Proposition 2.6 linear-time claim).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import figure6_row
from repro.bench.tables import fmt_int, fmt_pct, format_table
from repro.corpora import CORPORA
from repro.skeleton.loader import load

from conftest import register_report

_ROWS = {}


@pytest.mark.parametrize("corpus", sorted(CORPORA))
def test_compression_ratio(benchmark, corpus_cache, corpus):
    xml = corpus_cache(corpus)
    row = figure6_row(corpus, xml)
    _ROWS[corpus] = row

    # Time the measured pipeline: one-scan parse + compression (all tags).
    benchmark(lambda: load(xml, tags=None))

    # The reproduction claim is about *shape*: corpora the paper found
    # highly compressible must stay far below the outlier.
    assert row.ratio_plus < 1.0
    if corpus == "treebank":
        assert row.ratio_plus > 0.25
    if corpus in ("dblp", "baseball", "tpcd", "omim"):
        assert row.ratio_plus < 0.12


def _report():
    """Assemble the Figure 6 table once all rows exist (session teardown)."""
    if not _ROWS:
        return None
    headers = [
        "corpus",
        "MB",
        "|V^T|",
        "|V^M| -",
        "|E^M| -",
        "ratio -",
        "paper -",
        "|V^M| +",
        "|E^M| +",
        "ratio +",
        "paper +",
    ]
    rows = []
    order = [name for name in CORPORA if name in _ROWS]
    for name in order:
        row = _ROWS[name]
        rows.append(
            [
                name,
                f"{row.megabytes:.2f}",
                fmt_int(row.tree_vertices),
                fmt_int(row.vertices_minus),
                fmt_int(row.edges_minus),
                fmt_pct(row.ratio_minus),
                fmt_pct(row.paper_ratio_minus) if row.paper_ratio_minus else "-",
                fmt_int(row.vertices_plus),
                fmt_int(row.edges_plus),
                fmt_pct(row.ratio_plus),
                fmt_pct(row.paper_ratio_plus) if row.paper_ratio_plus else "-",
            ]
        )
    return format_table(
        headers, rows, title="Figure 6 — degree of compression (measured vs paper ratios)"
    )


register_report(_report)

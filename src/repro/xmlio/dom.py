"""A small in-memory XML document object model.

The library's data path never materialises a DOM (the loader streams SAX
events straight into the compressed builder); this model exists for tests,
examples and the corpus generators' convenience, and mirrors the skeleton
notion of the paper: elements with ordered children, text kept separate.
"""

from __future__ import annotations

from typing import Iterator

from repro.xmlio.parser import parse_events


class Element:
    """An element node: tag, attributes, ordered children (Element or str)."""

    __slots__ = ("tag", "attributes", "children")

    def __init__(self, tag: str, attributes: dict[str, str] | None = None):
        self.tag = tag
        self.attributes = attributes if attributes is not None else {}
        self.children: list[Element | str] = []

    def append(self, child: "Element | str") -> "Element | str":
        self.children.append(child)
        return child

    def element(self, tag: str, text: str | None = None) -> "Element":
        """Append and return a new child element, optionally with text."""
        child = Element(tag)
        if text is not None:
            child.children.append(text)
        self.children.append(child)
        return child

    def elements(self, tag: str | None = None) -> Iterator["Element"]:
        """Child elements, optionally filtered by tag."""
        for child in self.children:
            if isinstance(child, Element) and (tag is None or child.tag == tag):
                yield child

    def first(self, tag: str) -> "Element | None":
        """The first child element with the given tag, if any."""
        return next(self.elements(tag), None)

    def string_value(self) -> str:
        """Concatenated character data of the whole subtree (XPath semantics)."""
        parts: list[str] = []
        stack: list[Element | str] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, str):
                parts.append(node)
            else:
                stack.extend(reversed(node.children))
        return "".join(parts)

    def descendants(self) -> Iterator["Element"]:
        """All element descendants including self, in document order."""
        stack: list[Element] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(
                child for child in reversed(node.children) if isinstance(child, Element)
            )

    def skeleton_size(self) -> int:
        """Number of element nodes in the subtree (the skeleton |V|)."""
        return sum(1 for _ in self.descendants())

    def __repr__(self) -> str:
        return f"<Element {self.tag} children={len(self.children)}>"


class Document:
    """A parsed document: the root element plus prolog scraps."""

    __slots__ = ("root", "comments", "processing_instructions")

    def __init__(self, root: Element):
        self.root = root
        self.comments: list[str] = []
        self.processing_instructions: list[tuple[str, str]] = []


def parse_document(text: str) -> Document:
    """Parse ``text`` into a :class:`Document` (well-formedness enforced)."""
    root: Element | None = None
    stack: list[Element] = []
    comments: list[str] = []
    instructions: list[tuple[str, str]] = []
    for event in parse_events(text):
        kind = event.kind
        if kind == "start":
            element = Element(event.name, event.attributes)
            if stack:
                stack[-1].children.append(element)
            else:
                root = element
            stack.append(element)
        elif kind == "end":
            stack.pop()
        elif kind == "text":
            if stack:
                stack[-1].children.append(event.data)
        elif kind == "comment":
            comments.append(event.data)
        elif kind == "pi":
            instructions.append((event.target, event.data))
    assert root is not None  # parse_events guarantees a root
    document = Document(root)
    document.comments = comments
    document.processing_instructions = instructions
    return document

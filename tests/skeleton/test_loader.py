"""Tests for the one-scan skeleton loader."""

from repro.compress.minimize import is_compressed
from repro.model.paths import tree_size
from repro.model.schema import DOC_SET, string_set
from repro.skeleton.loader import load, load_instance

BIB_XML = """
<bib>
  <book>
    <title>Foundations of Databases</title>
    <author>Abiteboul</author>
    <author>Hull</author>
    <author>Vianu</author>
  </book>
  <paper>
    <title>A Relational Model for Large Shared Data Banks</title>
    <author>Codd</author>
  </paper>
  <paper>
    <title>The Complexity of Relational Query Languages</title>
    <author>Vardi</author>
  </paper>
</bib>
"""


class TestLoadStructure:
    def test_example_1_1_compression(self):
        # With all tags: the 12-node skeleton + doc root compresses; the two
        # papers share one vertex, the five authors share one vertex.
        instance = load_instance(BIB_XML)
        instance.validate()
        assert is_compressed(instance)
        assert tree_size(instance) == 13  # 12 skeleton nodes + document root
        assert len(instance.members("paper")) == 1
        assert len(instance.members("author")) == 1

    def test_document_root_present(self):
        instance = load_instance(BIB_XML)
        assert instance.in_set(instance.root, DOC_SET)
        assert instance.out_degree(instance.root) == 1

    def test_bare_structure_mode(self):
        instance = load_instance(BIB_XML, tags=())
        assert set(instance.schema) == {DOC_SET}
        # Without labels book and paper do not merge (different arity), but
        # all 5 author/title leaves do.
        assert tree_size(instance) == 13

    def test_selected_tags_mode(self):
        instance = load_instance(BIB_XML, tags=["author"])
        assert set(instance.schema) == {DOC_SET, "author"}
        assert len(instance.members("author")) == 1

    def test_tag_selection_affects_compression(self):
        # Figure 6's two settings: "-" compresses at least as well as "+".
        bare = load_instance(BIB_XML, tags=())
        full = load_instance(BIB_XML)
        assert bare.num_vertices <= full.num_vertices

    def test_parse_stats(self):
        result = load(BIB_XML)
        assert result.skeleton_nodes == 13
        assert result.parse_seconds >= 0.0


class TestLoadStrings:
    def test_string_constraint_set(self):
        instance = load_instance(BIB_XML, strings=["Codd"])
        name = string_set("Codd")
        members = instance.members(name)
        # Exactly one author leaf contains Codd; its ancestors (paper, bib,
        # document) contain it in their string values too.
        assert len(members) >= 2
        author_hits = members & instance.members("author")
        assert len(author_hits) == 1

    def test_string_constraint_splits_sharing(self):
        # With 'Vardi' distinguished the two papers no longer share a vertex.
        instance = load_instance(BIB_XML, strings=["Vardi"])
        assert len(instance.members("paper")) == 2

    def test_string_across_markup_boundary(self):
        xml_text = "<a><b>Co</b><c>dd</c></a>"
        instance = load_instance(xml_text, strings=["Codd"])
        name = string_set("Codd")
        assert instance.members(name) == {
            v for v in instance.preorder() if instance.in_set(v, "a") or instance.in_set(v, DOC_SET)
        }

    def test_duplicate_strings_deduplicated(self):
        instance = load_instance(BIB_XML, strings=["Codd", "Codd"])
        assert list(instance.schema).count(string_set("Codd")) == 1

    def test_matcher_strategies_agree(self):
        from repro.model.equivalence import equivalent

        by_find = load(BIB_XML, strings=["Codd", "Vardi"], matcher_strategy="find").instance
        by_auto = load(
            BIB_XML, strings=["Codd", "Vardi"], matcher_strategy="automaton"
        ).instance
        assert equivalent(by_find, by_auto)


class TestContainers:
    def test_containers_grouped_by_parent_tag(self):
        result = load(BIB_XML, collect_containers=True)
        store = result.containers
        author = store.container("author")
        assert author is not None
        assert "Codd" in author.chunks
        assert len([c for c in author.chunks if c.strip()]) == 5

    def test_document_order_reassembly(self):
        result = load("<a><t>one</t><t>two</t><u>three</u></a>", collect_containers=True)
        texts = result.containers.in_document_order()
        assert texts == ["one", "two", "three"]

    def test_containers_off_by_default(self):
        assert load(BIB_XML).containers is None


class TestLoadFile:
    def test_load_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(BIB_XML, encoding="utf-8")
        from repro.skeleton.loader import load_file

        result = load_file(str(path), tags=["book"])
        assert len(result.instance.members("book")) == 1

"""DBLP-like bibliography corpus.

DBLP is the paper's most striking compression result: 2.6M skeleton nodes
collapse to 321 DAG vertices (tags ignored), because bibliography records
are drawn from a tiny pool of shapes.  This generator reproduces that
character: records are one of a small number of field layouts (publication
type x author count x optional-field pattern), so the compressed vertex
count stays in the hundreds regardless of scale.

Planted strings (Appendix A, DBLP Q3-Q5): one ``article`` authored by
"E. F. Codd"; records where "Ashok K. Chandra" is immediately followed by
"David Harel" (Q5's following-sibling), and one where another author sits
between them (matches Q4 but not Q5).
"""

from __future__ import annotations

from repro.corpora.base import GeneratedCorpus, XMLBuilder, check_scale, person_name, rng_for, sentence

_VENUES = ("JACM", "TODS", "SIGMOD", "VLDB", "PODS", "ICDT", "TCS", "IPL")

#: The small pool of record layouts: (kind, #authors, optional fields).
_SHAPES = [
    ("article", authors, extras)
    for authors in (1, 2, 3, 4)
    for extras in (("volume",), ("volume", "ee"), ("ee",), ())
] + [
    ("inproceedings", authors, extras)
    for authors in (1, 2, 3)
    for extras in (("ee",), ())
]


def _record(builder: XMLBuilder, rng, kind: str, authors: list[str], extras: tuple[str, ...]) -> None:
    builder.open(kind)
    for author in authors:
        builder.leaf("author", author)
    builder.leaf("title", sentence(rng, rng.randint(4, 9)).title())
    builder.leaf("pages", f"{rng.randint(1, 400)}-{rng.randint(401, 800)}")
    builder.leaf("year", str(rng.randint(1970, 2002)))
    if "volume" in extras:
        builder.leaf("volume", str(rng.randint(1, 40)))
    builder.leaf("journal" if kind == "article" else "booktitle", rng.choice(_VENUES))
    builder.leaf("url", f"db/journals/x/y{rng.randint(1, 99)}.html#p{rng.randint(1, 999)}")
    if "ee" in extras:
        builder.leaf("ee", f"https://doi.example/10.{rng.randint(1000, 9999)}")
    builder.close().newline()


def generate(scale: int = 3000, seed: int = 0) -> GeneratedCorpus:
    """Generate ``scale`` bibliography records (roughly 9 skeleton nodes each)."""
    check_scale(scale)
    rng = rng_for("dblp", scale, seed)
    builder = XMLBuilder()
    builder.open("dblp").newline()
    for index in range(scale):
        kind, author_count, extras = rng.choice(_SHAPES)
        authors = [person_name(rng) for _ in range(author_count)]
        if index == 7 % scale:
            kind, authors, extras = "article", ["E. F. Codd"], ("ee",)
        elif scale > 3 and index % max(scale // 3, 1) == 1:
            # Q5 adjacency: Chandra immediately followed by Harel.
            kind = "article"
            authors = ["Ashok K. Chandra", "David Harel"]
        elif scale > 5 and index == 5:
            # Matches Q4 (both authors) but not Q5 (not adjacent).
            kind = "article"
            authors = ["Ashok K. Chandra", person_name(rng), "David Harel"]
        _record(builder, rng, kind, authors, extras)
    builder.close()
    return GeneratedCorpus(name="dblp", xml=builder.result(), scale=scale, seed=seed)

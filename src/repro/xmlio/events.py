"""SAX-like event objects produced by the XML tokenizer and parser."""

from __future__ import annotations


class Event:
    """Base class for parse events.  ``kind`` is a cheap dispatch tag."""

    __slots__ = ("offset",)
    kind = "event"

    def __init__(self, offset: int = -1):
        self.offset = offset


class StartElement(Event):
    """``<tag attr="value" ...>`` (also emitted for the open half of ``<tag/>``)."""

    __slots__ = ("name", "attributes")
    kind = "start"

    def __init__(self, name: str, attributes: dict[str, str] | None = None, offset: int = -1):
        super().__init__(offset)
        self.name = name
        self.attributes = attributes if attributes is not None else {}

    def __repr__(self) -> str:
        return f"StartElement({self.name!r}, {self.attributes!r})"


class EndElement(Event):
    """``</tag>`` (also emitted for the close half of ``<tag/>``)."""

    __slots__ = ("name",)
    kind = "end"

    def __init__(self, name: str, offset: int = -1):
        super().__init__(offset)
        self.name = name

    def __repr__(self) -> str:
        return f"EndElement({self.name!r})"


class Text(Event):
    """Character data (entity references already resolved; CDATA merged in)."""

    __slots__ = ("data",)
    kind = "text"

    def __init__(self, data: str, offset: int = -1):
        super().__init__(offset)
        self.data = data

    def __repr__(self) -> str:
        return f"Text({self.data!r})"


class Comment(Event):
    """``<!-- ... -->``"""

    __slots__ = ("data",)
    kind = "comment"

    def __init__(self, data: str, offset: int = -1):
        super().__init__(offset)
        self.data = data

    def __repr__(self) -> str:
        return f"Comment({self.data!r})"


class ProcessingInstruction(Event):
    """``<?target data?>`` (the XML declaration is reported here too)."""

    __slots__ = ("target", "data")
    kind = "pi"

    def __init__(self, target: str, data: str, offset: int = -1):
        super().__init__(offset)
        self.target = target
        self.data = data

    def __repr__(self) -> str:
        return f"ProcessingInstruction({self.target!r}, {self.data!r})"


class Doctype(Event):
    """``<!DOCTYPE ...>`` — preserved verbatim, never interpreted."""

    __slots__ = ("data",)
    kind = "doctype"

    def __init__(self, data: str, offset: int = -1):
        super().__init__(offset)
        self.data = data

    def __repr__(self) -> str:
        return f"Doctype({self.data!r})"

"""Tests for the hash-consing canonicaliser underlying M(I) and equivalence."""

import pytest

from repro.errors import SchemaError
from repro.model.canonical import ConsTable, canonical_ids, remap_mask, shared_name_order
from repro.model.instance import Instance, tree_instance


class TestConsTable:
    def test_interning_is_stable(self):
        table = ConsTable()
        first = table.intern((0, ()))
        second = table.intern((0, ()))
        assert first == second
        assert len(table) == 1

    def test_distinct_keys_distinct_ids(self):
        table = ConsTable()
        assert table.intern((0, ())) != table.intern((1, ()))


class TestCanonicalIds:
    def test_equal_subtrees_get_equal_ids(self, bib_tree):
        ids = canonical_ids(bib_tree)
        papers = sorted(bib_tree.members("paper"))
        assert ids[papers[0]] == ids[papers[1]]
        authors = sorted(bib_tree.members("author"))
        assert len({ids[a] for a in authors}) == 1

    def test_shared_table_makes_instances_comparable(self, bib_tree, figure2_compressed):
        table = ConsTable()
        order = sorted(set(bib_tree.schema) & set(figure2_compressed.schema))
        ids_tree = canonical_ids(bib_tree, table, order)
        ids_dag = canonical_ids(figure2_compressed, table, order)
        assert ids_tree[bib_tree.root] == ids_dag[figure2_compressed.root]

    def test_multiplicity_runs_normalised(self):
        # (leaf,2)+(leaf,1) on one vertex vs (leaf,3) on another: same id.
        instance = Instance(["l"])
        leaf = instance.new_vertex(["l"])
        a = instance.new_vertex(children=[(leaf, 3)])
        b = instance.new_vertex(children=[(leaf, 2), (leaf, 1)])
        root = instance.new_vertex(children=[(a, 1), (b, 1)])
        instance.set_root(root)
        ids = canonical_ids(instance)
        assert ids[a] == ids[b]

    def test_unreachable_vertices_skipped(self):
        instance = Instance()
        instance.new_vertex()  # unreachable after root choice below
        root = instance.new_vertex()
        instance.set_root(root)
        ids = canonical_ids(instance)
        assert set(ids) == {root}


class TestMaskRemap:
    def test_remap_reorders_bits(self):
        instance = tree_instance((("x", "y"), []), schema=["x", "y"])
        vertex = instance.root
        assert remap_mask(instance, vertex, ["y", "x"]) == 0b11
        only_x = tree_instance(("x", []), schema=["x", "y"])
        assert remap_mask(only_x, only_x.root, ["y", "x"]) == 0b10

    def test_shared_name_order_requires_equal_sets(self):
        a = tree_instance(("x", []))
        b = tree_instance(("x", []), schema=["x", "extra"])
        with pytest.raises(SchemaError, match="different schemas"):
            shared_name_order(a, b)

    def test_shared_name_order_is_sorted(self):
        a = tree_instance(("x", [("y", [])]), schema=["y", "x"])
        b = tree_instance(("x", [("y", [])]), schema=["x", "y"])
        assert shared_name_order(a, b) == ["x", "y"]

"""The sigma-instance data structure (section 2.1 of the paper).

An instance is a tuple ``(V, gamma, root, S_1 ... S_n)`` where ``gamma`` maps
each vertex to the *ordered sequence* of its children, the induced directed
graph is acyclic with a single root, and each ``S_i`` is a vertex subset named
by the schema.  Both uncompressed XML skeletons (trees) and their compressed
DAG versions are values of this one type.

Representation choices (see DESIGN.md section 4):

* vertices are dense integers ``0 .. num_vertices-1``;
* child sequences are stored run-length encoded as ``(child, count)`` pairs —
  the *edge multiplicities* of Figure 1(c); ``count >= 1`` and adjacent
  entries with the same child are merged by :meth:`Instance.set_children`;
* set membership is a per-vertex integer bitmask, with schema names mapped to
  bit positions; this makes the hash-consing key of the compressor a cheap
  ``(mask, children)`` tuple and set operations integer arithmetic.

The structure is mutable: the query engine adds selections (new sets) and
splits shared vertices during partial decompression.  Use :meth:`copy` when
an evaluation must not disturb its input.

Two facilities keep the query engine's constant factors down (DESIGN.md
section 5):

* *bulk mask-plane operations* (:meth:`combine_sets`, :meth:`fill_set`,
  :meth:`clear_sets`, :meth:`drop_sets`) update every vertex's bitmask in a
  single pass over the internal ``_masks`` list instead of a per-vertex
  method call;
* *cached traversals*: :meth:`preorder`/:meth:`postorder` memoise their
  result, invalidated by a structural generation counter that every
  structure-mutating method bumps.  Callers must treat the returned lists
  as read-only.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import InstanceError, SchemaError

#: A run-length encoded edge: ``(child vertex, multiplicity)``.
Edge = tuple[int, int]


def normalize_edges(edges: Iterable[Edge]) -> tuple[Edge, ...]:
    """Merge adjacent runs with equal targets and validate multiplicities.

    ``[(a, 2), (a, 3), (b, 1)]`` becomes ``((a, 5), (b, 1))``.  Entries with
    ``count == 0`` are dropped; negative counts are rejected.
    """
    out: list[Edge] = []
    for child, count in edges:
        if count < 0:
            raise InstanceError(f"negative edge multiplicity {count} to vertex {child}")
        if count == 0:
            continue
        if out and out[-1][0] == child:
            out[-1] = (child, out[-1][1] + count)
        else:
            out.append((child, count))
    return tuple(out)


def expand_edges(edges: Iterable[Edge]) -> Iterator[int]:
    """Yield the child sequence with multiplicities expanded."""
    for child, count in edges:
        for _ in range(count):
            yield child


class Instance:
    """A rooted, ordered, acyclic sigma-instance with multiplicity edges."""

    __slots__ = (
        "_schema",
        "_bits",
        "_children",
        "_masks",
        "_root",
        "_generation",
        "_pre_cache",
        "_post_cache",
    )

    def __init__(self, schema: Iterable[str] = ()):
        self._schema: list[str] = []
        self._bits: dict[str, int] = {}
        for name in schema:
            self.ensure_set(name)
        self._children: list[tuple[Edge, ...]] = []
        self._masks: list[int] = []
        self._root: int = -1
        self._generation: int = 0
        self._pre_cache: list[int] | None = None
        self._post_cache: list[int] | None = None

    # ------------------------------------------------------------------
    # Schema management
    # ------------------------------------------------------------------

    @property
    def schema(self) -> tuple[str, ...]:
        """The schema as an ordered tuple of set names (order = bit position)."""
        return tuple(self._schema)

    def has_set(self, name: str) -> bool:
        """True if ``name`` is in the schema."""
        return name in self._bits

    def bit_of(self, name: str) -> int:
        """Bit position of set ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self._bits[name]
        except KeyError:
            raise SchemaError(f"set {name!r} is not in the schema {self._schema!r}") from None

    def ensure_set(self, name: str) -> int:
        """Add ``name`` to the schema if missing; return its bit position."""
        if not name:
            raise SchemaError("set names must be non-empty")
        bit = self._bits.get(name)
        if bit is None:
            bit = len(self._schema)
            self._schema.append(name)
            self._bits[name] = bit
        return bit

    def drop_set(self, name: str) -> None:
        """Remove set ``name`` from the schema, compacting vertex masks."""
        self.drop_sets((name,))

    def drop_sets(self, names: Iterable[str]) -> None:
        """Remove several sets from the schema in one pass over the masks.

        Equivalent to repeated :meth:`drop_set` but O(V) total instead of
        O(len(names) * V): the surviving bit positions are grouped into
        contiguous segments and every mask is recomposed with one shift/and
        per segment.
        """
        dropped = {self.bit_of(name) for name in dict.fromkeys(names)}
        if not dropped:
            return
        kept = [bit for bit in range(len(self._schema)) if bit not in dropped]
        # Contiguous runs of kept bits become (right-shift, mask) segments:
        # a run of length L at old position s landing at new position d
        # contributes ((m >> (s - d)) & (((1 << L) - 1) << d)).
        segments: list[tuple[int, int]] = []
        index = 0
        while index < len(kept):
            start = kept[index]
            length = 1
            while index + length < len(kept) and kept[index + length] == start + length:
                length += 1
            destination = index
            segments.append((start - destination, ((1 << length) - 1) << destination))
            index += length
        masks = self._masks
        if not segments:
            masks[:] = [0] * len(masks)
        elif len(segments) == 1:
            shift, keep_mask = segments[0]
            masks[:] = [(m >> shift) & keep_mask for m in masks]
        else:
            first_shift, first_mask = segments[0]
            rest = segments[1:]
            out = []
            append = out.append
            for m in masks:
                acc = (m >> first_shift) & first_mask
                for shift, keep_mask in rest:
                    acc |= (m >> shift) & keep_mask
                append(acc)
            masks[:] = out
        self._schema = [name for i, name in enumerate(self._schema) if i not in dropped]
        self._bits = {n: i for i, n in enumerate(self._schema)}

    def clear_sets(self, names: Iterable[str]) -> None:
        """Empty several sets (schema unchanged) in one pass over the masks."""
        bits = 0
        for name in dict.fromkeys(names):
            bits |= 1 << self.bit_of(name)
        if not bits:
            return
        keep = ~bits
        masks = self._masks
        masks[:] = [m & keep for m in masks]

    # ------------------------------------------------------------------
    # Vertices and edges
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._children)

    @property
    def root(self) -> int:
        """The root vertex; raises if unset."""
        if self._root < 0:
            raise InstanceError("instance has no root (call set_root)")
        return self._root

    @property
    def has_root(self) -> bool:
        return self._root >= 0

    @property
    def generation(self) -> int:
        """Structural generation: bumped by every mutation of the DAG shape.

        Mask-only updates (set membership) do not count — traversal orders
        depend only on ``_children`` and the root.
        """
        return self._generation

    def _touch(self) -> None:
        """Invalidate cached traversals after a structural mutation."""
        self._generation += 1
        self._pre_cache = None
        self._post_cache = None

    def set_root(self, vertex: int) -> None:
        self._check_vertex(vertex)
        self._root = vertex
        self._touch()

    def new_vertex(self, sets: Iterable[str] = (), children: Iterable[Edge] = ()) -> int:
        """Create a vertex, optionally with set memberships and children.

        Children must already exist, which enforces acyclicity for instances
        built bottom-up.  (Top-down construction can use
        :meth:`set_children` later; :meth:`validate` re-checks acyclicity.)
        """
        mask = 0
        for name in sets:
            mask |= 1 << self.ensure_set(name)
        vertex = len(self._children)
        self._children.append(())
        self._masks.append(mask)
        self._touch()
        if children:
            self.set_children(vertex, children)
        return vertex

    def new_vertex_masked(self, mask: int, children: tuple[Edge, ...] = ()) -> int:
        """Fast-path vertex creation from a precomputed mask and normalized edges."""
        vertex = len(self._children)
        self._children.append(children)
        self._masks.append(mask)
        self._touch()
        return vertex

    def set_children(self, vertex: int, edges: Iterable[Edge]) -> None:
        """Replace the child sequence of ``vertex`` (normalizing runs)."""
        self._check_vertex(vertex)
        normalized = normalize_edges(edges)
        for child, _ in normalized:
            self._check_vertex(child)
        self._children[vertex] = normalized
        self._touch()

    def children(self, vertex: int) -> tuple[Edge, ...]:
        """The run-length encoded child sequence of ``vertex``."""
        return self._children[vertex]

    def expanded_children(self, vertex: int) -> Iterator[int]:
        """The child sequence of ``vertex`` with multiplicities expanded."""
        return expand_edges(self._children[vertex])

    def out_degree(self, vertex: int) -> int:
        """Number of children counting multiplicities."""
        return sum(count for _, count in self._children[vertex])

    @property
    def num_edge_entries(self) -> int:
        """Number of run-length edge entries (the paper's ``|E|`` for DAGs)."""
        return sum(len(edges) for edges in self._children)

    @property
    def num_edges_expanded(self) -> int:
        """Number of edges counting multiplicities (``|E|`` of the tree if a tree)."""
        return sum(self.out_degree(v) for v in range(len(self._children)))

    # ------------------------------------------------------------------
    # Set membership
    # ------------------------------------------------------------------

    def mask(self, vertex: int) -> int:
        """The set-membership bitmask of ``vertex``."""
        return self._masks[vertex]

    def set_mask(self, vertex: int, mask: int) -> None:
        self._masks[vertex] = mask

    def in_set(self, vertex: int, name: str) -> bool:
        """True if ``vertex`` is a member of set ``name``."""
        return bool(self._masks[vertex] >> self.bit_of(name) & 1)

    def add_to_set(self, vertex: int, name: str) -> None:
        """Add ``vertex`` to set ``name`` (creating the set if needed)."""
        self._masks[vertex] |= 1 << self.ensure_set(name)

    def remove_from_set(self, vertex: int, name: str) -> None:
        self._masks[vertex] &= ~(1 << self.bit_of(name))

    def members(self, name: str) -> set[int]:
        """The vertex set named ``name`` as a Python set."""
        bit = self.bit_of(name)
        return {v for v, m in enumerate(self._masks) if m >> bit & 1}

    def sets_at(self, vertex: int) -> tuple[str, ...]:
        """Names of all sets containing ``vertex`` (in schema order)."""
        mask = self._masks[vertex]
        return tuple(name for i, name in enumerate(self._schema) if mask >> i & 1)

    # ------------------------------------------------------------------
    # Bulk mask-plane operations (single pass over the whole mask list)
    # ------------------------------------------------------------------

    def combine_sets(self, op: str, left: str, right: str, target: str) -> str:
        """Compute ``target = left <op> right`` over all reachable vertices.

        ``op`` is ``"union"``, ``"intersect"`` or ``"difference"``.
        ``target`` is created if missing; the result is identical to reading
        both operand bits and writing the target bit vertex by vertex, but
        runs as one pass over the internal mask list.  Returns ``target``.
        """
        left_bit = self.bit_of(left)
        right_bit = self.bit_of(right)
        target_bit = 1 << self.ensure_set(target)
        masks = self._masks
        order = self.preorder()
        if op == "union":
            if len(order) == len(masks):
                masks[:] = [
                    m | target_bit if (m >> left_bit | m >> right_bit) & 1 else m
                    for m in masks
                ]
            else:
                for v in order:
                    m = masks[v]
                    if (m >> left_bit | m >> right_bit) & 1:
                        masks[v] = m | target_bit
        elif op == "intersect":
            if len(order) == len(masks):
                masks[:] = [
                    m | target_bit if (m >> left_bit) & (m >> right_bit) & 1 else m
                    for m in masks
                ]
            else:
                for v in order:
                    m = masks[v]
                    if (m >> left_bit) & (m >> right_bit) & 1:
                        masks[v] = m | target_bit
        elif op == "difference":
            if len(order) == len(masks):
                masks[:] = [
                    m | target_bit if (m >> left_bit) & ~(m >> right_bit) & 1 else m
                    for m in masks
                ]
            else:
                for v in order:
                    m = masks[v]
                    if (m >> left_bit) & ~(m >> right_bit) & 1:
                        masks[v] = m | target_bit
        else:
            raise ValueError(f"unknown set operation {op!r}")
        return target

    def fill_set(self, name: str) -> str:
        """Add every reachable vertex to set ``name`` in one pass.

        Creates the set if missing and returns ``name`` (the ``V`` of the
        algebra's ``AllNodes``).
        """
        bit = 1 << self.ensure_set(name)
        masks = self._masks
        order = self.preorder()
        if len(order) == len(masks):
            masks[:] = [m | bit for m in masks]
        else:
            for v in order:
                masks[v] |= bit
        return name

    # ------------------------------------------------------------------
    # Hot-path accessors (engine internals)
    # ------------------------------------------------------------------

    def mask_plane(self) -> list[int]:
        """The internal per-vertex mask list, for engine hot loops.

        Updating entries in place is allowed (masks carry no structural
        information, so traversal caches stay valid); never resize the list.
        Bulk operations mutate it in place, so a held reference stays live.
        """
        return self._masks

    def edge_table(self) -> Sequence[tuple[Edge, ...]]:
        """The internal per-vertex edge-tuple list, for engine hot loops.

        Strictly read-only: all structural mutation must go through
        :meth:`set_children` / :meth:`new_vertex` so caches invalidate.
        """
        return self._children

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def topological_order(self) -> list[int]:
        """Vertices reachable from the root, every parent before its children.

        Computed as reverse DFS postorder, iteratively (instances can be very
        deep chains, e.g. compressed complete binary trees).
        """
        return list(reversed(self.postorder()))

    def postorder(self) -> list[int]:
        """Vertices reachable from the root in DFS postorder (children first).

        The result is cached until the next structural mutation; treat the
        returned list as read-only.
        """
        cached = self._post_cache
        if cached is not None:
            return cached
        root = self.root
        order: list[int] = []
        visited = bytearray(len(self._children))
        # Stack entries: (vertex, index of next distinct child to expand).
        stack: list[list[int]] = [[root, 0]]
        visited[root] = 1
        while stack:
            top = stack[-1]
            vertex, i = top
            edges = self._children[vertex]
            while i < len(edges) and visited[edges[i][0]]:
                i += 1
            top[1] = i + 1
            if i < len(edges):
                child = edges[i][0]
                visited[child] = 1
                stack.append([child, 0])
            else:
                order.append(vertex)
                stack.pop()
        self._post_cache = order
        return order

    def preorder(self) -> list[int]:
        """Vertices reachable from the root in DFS preorder (first visit).

        The result is cached until the next structural mutation; treat the
        returned list as read-only.
        """
        cached = self._pre_cache
        if cached is not None:
            return cached
        root = self.root
        order: list[int] = []
        visited = bytearray(len(self._children))
        stack = [root]
        visited[root] = 1
        while stack:
            vertex = stack.pop()
            order.append(vertex)
            for child, _ in reversed(self._children[vertex]):
                if not visited[child]:
                    visited[child] = 1
                    stack.append(child)
        self._pre_cache = order
        return order

    def reachable(self) -> set[int]:
        """Vertices reachable from the root."""
        return set(self.preorder())

    def parents(self) -> list[list[int]]:
        """For each vertex, the list of distinct parents (reachable subgraph)."""
        result: list[list[int]] = [[] for _ in range(len(self._children))]
        for vertex in self.preorder():
            seen: set[int] = set()
            for child, _ in self._children[vertex]:
                if child not in seen:
                    seen.add(child)
                    result[child].append(vertex)
        return result

    # ------------------------------------------------------------------
    # Structure checks and transformations
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check all structural invariants; raise :class:`InstanceError` if violated.

        Invariants: a root exists; the graph is acyclic; the root is the only
        vertex without incoming edges; every vertex is reachable from the
        root (implied by the former two, checked directly); multiplicities
        are positive and runs are merged.
        """
        root = self.root
        n = len(self._children)
        in_degree = [0] * n
        for edges in self._children:
            previous = -1
            for child, count in edges:
                if not 0 <= child < n:
                    raise InstanceError(f"edge target {child} out of range")
                if count < 1:
                    raise InstanceError(f"non-positive multiplicity {count}")
                if child == previous:
                    raise InstanceError(f"unmerged run of edges to vertex {child}")
                previous = child
                in_degree[child] += 1
        if in_degree[root]:
            raise InstanceError("root has incoming edges")
        for vertex, degree in enumerate(in_degree):
            if degree == 0 and vertex != root:
                raise InstanceError(f"vertex {vertex} has no incoming edge and is not the root")
        # Cycle check via iterative three-color DFS.
        WHITE, GRAY, BLACK = 0, 1, 2
        color = bytearray(n)
        stack: list[list[int]] = [[root, 0]]
        color[root] = GRAY
        while stack:
            top = stack[-1]
            vertex, i = top
            edges = self._children[vertex]
            advanced = False
            while i < len(edges):
                child = edges[i][0]
                i += 1
                if color[child] == GRAY:
                    raise InstanceError(f"cycle through vertex {child}")
                if color[child] == WHITE:
                    top[1] = i
                    color[child] = GRAY
                    stack.append([child, 0])
                    advanced = True
                    break
            if not advanced:
                color[vertex] = BLACK
                stack.pop()
        if any(c == WHITE for c in color):
            unreachable = [v for v in range(n) if color[v] == WHITE]
            raise InstanceError(f"vertices not reachable from root: {unreachable[:10]}")

    def is_tree(self) -> bool:
        """True if every vertex has in-degree at most 1 and all counts are 1."""
        n = len(self._children)
        in_degree = [0] * n
        for edges in self._children:
            for child, count in edges:
                if count != 1:
                    return False
                in_degree[child] += 1
                if in_degree[child] > 1:
                    return False
        return True

    def copy(self) -> "Instance":
        """An independent copy (vertex numbering preserved)."""
        clone = Instance.__new__(Instance)
        clone._schema = list(self._schema)
        clone._bits = dict(self._bits)
        clone._children = list(self._children)  # edge tuples are immutable
        clone._masks = list(self._masks)
        clone._root = self._root
        clone._generation = self._generation
        # Cached orders are read-only lists over identical structure, so the
        # clone can share them; either side's next mutation drops its own ref.
        clone._pre_cache = self._pre_cache
        clone._post_cache = self._post_cache
        return clone

    def compact(self) -> "Instance":
        """A copy with unreachable vertices dropped and ids renumbered.

        Vertices are renumbered in topological (parent-before-child) order,
        so the root becomes vertex 0.
        """
        order = self.topological_order()
        renumber = {old: new for new, old in enumerate(order)}
        clone = Instance(self._schema)
        clone._children = [()] * len(order)
        clone._masks = [0] * len(order)
        for old in order:
            new = renumber[old]
            clone._children[new] = tuple(
                (renumber[child], count) for child, count in self._children[old]
            )
            clone._masks[new] = self._masks[old]
        clone._root = renumber[self.root]
        return clone

    def reduct(self, names: Iterable[str]) -> "Instance":
        """The sigma'-reduct: same DAG, schema restricted to ``names`` (section 2.3)."""
        keep = list(names)
        for name in keep:
            self.bit_of(name)  # raises if absent
        clone = Instance(keep)
        clone._children = list(self._children)
        clone._root = self._root
        masks = []
        bits = [self.bit_of(name) for name in keep]
        for m in self._masks:
            masks.append(sum(((m >> b) & 1) << i for i, b in enumerate(bits)))
        clone._masks = masks
        return clone

    # ------------------------------------------------------------------
    # Debugging / rendering
    # ------------------------------------------------------------------

    def to_dot(self, highlight: str | None = None) -> str:
        """Render the reachable subgraph in Graphviz dot syntax.

        Vertices are labeled with their set memberships; if ``highlight``
        names a set, its members are drawn with a double circle (used by the
        examples to mirror Figure 5 of the paper).
        """
        lines = ["digraph instance {", "  node [shape=circle];"]
        for vertex in self.preorder():
            label = ",".join(self.sets_at(vertex)) or str(vertex)
            shape = ""
            if highlight is not None and self.in_set(vertex, highlight):
                shape = ", shape=doublecircle"
            lines.append(f'  v{vertex} [label="{label}"{shape}];')
        for vertex in self.preorder():
            for position, (child, count) in enumerate(self._children[vertex]):
                attr = f' [label="x{count}"]' if count > 1 else ""
                lines.append(f"  v{vertex} -> v{child}{attr};")
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        root = self._root if self._root >= 0 else None
        return (
            f"<Instance |V|={self.num_vertices} |E|={self.num_edge_entries} "
            f"root={root} schema={self._schema!r}>"
        )

    # ------------------------------------------------------------------

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < len(self._children):
            raise InstanceError(f"vertex {vertex} does not exist")


# ----------------------------------------------------------------------
# Convenience constructors (used heavily by tests and examples)
# ----------------------------------------------------------------------

#: A nested tree spec: ``(sets, [children])`` where ``sets`` is a set name or
#: a sequence of set names.
TreeSpec = tuple


def tree_instance(spec: TreeSpec, schema: Iterable[str] = ()) -> Instance:
    """Build a tree-instance from a nested ``(sets, children)`` spec.

    Example::

        tree_instance(("bib", [("book", [("title", []), ("author", [])])]))

    builds the Example 1.1 skeleton fragment.  ``sets`` may be a single name,
    a tuple of names, or ``()`` for an unlabeled vertex.
    """
    instance = Instance(schema)

    def build(node: TreeSpec) -> int:
        sets, children = node
        if isinstance(sets, str):
            sets = (sets,)
        child_edges = [(build(child), 1) for child in children]
        return instance.new_vertex(sets, child_edges)

    # Recursion depth equals tree depth; tests keep specs shallow.  Corpus
    # generators use the streaming DagBuilder instead.
    root = build(spec)
    instance.set_root(root)
    return instance

"""Chaos suite: injected faults must yield a correct result or a structured
error envelope — never a hang, a wrong answer, or a crash loop.

Every scenario drives a fault through the :data:`repro.server.resilience.FAULTS`
seam (or real on-disk corruption / a real SIGKILL) and then asserts the
serving path's *contract*: bounded latency, the exact error ``kind`` a client
would see, and full recovery once the fault clears.
"""

import http.client
import json
import os
import signal
import threading
import time

import pytest

from repro.engine.pipeline import Engine
from repro.errors import (
    CatalogError,
    DeadlineExceededError,
    EvaluationError,
    IntegrityError,
    WorkerUnavailableError,
)
from repro.server.catalog import Catalog
from repro.server.cluster import WorkerFleet
from repro.server.http import create_server, wait_ready
from repro.server.resilience import FAULTS, Deadline
from repro.server.service import QueryService, decode_result

from tests.server.test_catalog import corrupt_chunk
from tests.server.test_cluster import wait_until
from tests.skeleton.test_loader import BIB_XML

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def disarmed_faults():
    """Every scenario starts and ends with the global seam off."""
    FAULTS.disarm()
    yield
    FAULTS.disarm()


@pytest.fixture
def service(tmp_path):
    catalog = Catalog(str(tmp_path / "cat"))
    catalog.add("bib", BIB_XML)
    service = QueryService(catalog)
    try:
        yield service
    finally:
        FAULTS.disarm()  # before close(): a pending latency fault must not stall drain
        service.close()


def expected(query, paths=0):
    return decode_result(Engine(BIB_XML).query(query), paths=paths)


def start_server(tmp_path, **kwargs):
    Catalog(str(tmp_path / "cat")).add("bib", BIB_XML)
    server = create_server(str(tmp_path / "cat"), port=0, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    assert wait_ready(host, port, timeout=30)
    return server, thread


def stop_server(server, thread):
    server.shutdown()
    server.server_close()
    service = getattr(server, "service", None)
    if service is not None:
        service.close()
    thread.join(timeout=10)


def request(server, method, path, body=None, headers=None):
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        connection.request(method, path, payload, headers or {})
        response = connection.getresponse()
        data = json.loads(response.read().decode("utf-8"))
        return response.status, data, dict(response.getheaders())
    finally:
        connection.close()


class TestServiceFaults:
    """In-process service: injected faults surface as typed errors, then heal."""

    def test_evaluate_fault_is_typed_then_recovers(self, service):
        FAULTS.arm("service.evaluate", error=EvaluationError("injected engine failure"))
        with pytest.raises(EvaluationError, match="injected"):
            service.query("bib", "//book/author")
        FAULTS.disarm()
        payload = service.query("bib", "//book/author")
        assert payload["tree_count"] == expected("//book/author")["tree_count"]

    def test_slow_evaluation_trips_the_deadline(self, service):
        FAULTS.arm("service.evaluate", latency=0.5)
        started = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            service.query("bib", "//book/author", deadline=Deadline.after(0.05))
        # The waiter is released by its own budget, not the fault's latency
        # plus evaluation: bounded, no hang.
        assert time.monotonic() - started < 5.0

    def test_transient_cold_load_fault_self_heals(self, service):
        FAULTS.arm("pool.load", error=CatalogError("injected load failure"), times=1)
        with pytest.raises(CatalogError, match="injected"):
            service.query("bib", "//book/author")
        payload = service.query("bib", "//book/author")  # fault self-disarmed
        assert payload["tree_count"] == expected("//book/author")["tree_count"]

    def test_manifest_fault_is_diagnosable(self, service):
        FAULTS.arm("catalog.manifest", error=CatalogError("torn manifest (injected)"))
        with pytest.raises(CatalogError, match="torn manifest"):
            service.catalog.refresh()


class TestHTTPFaults:
    """Real sockets: the same faults become the uniform error envelope."""

    def test_real_corruption_quarantine_reload_cycle(self, tmp_path):
        server, thread = start_server(tmp_path)
        try:
            corrupt_chunk(str(tmp_path / "cat"), "bib")
            status, payload, _ = request(
                server, "POST", "/query", {"document": "bib", "query": "//book/author"}
            )
            assert status == 503
            assert payload["error"]["kind"] == "integrity"
            # Fail-fast now: quarantined, the corrupt chunks are not re-read.
            status, payload, _ = request(
                server, "POST", "/query", {"document": "bib", "query": "//book/author"}
            )
            assert status == 503
            assert payload["error"]["kind"] == "quarantined"
            status, payload, _ = request(server, "GET", "/healthz")
            assert status == 203 and payload["status"] == "degraded"
            # Operator repairs from the kept text; serving resumes, correct.
            server.service.catalog.reload("bib")
            status, payload, _ = request(
                server, "POST", "/query", {"document": "bib", "query": "//book/author"}
            )
            assert status == 200
            assert payload["tree_count"] == expected("//book/author")["tree_count"]
            status, payload, _ = request(server, "GET", "/healthz")
            assert status == 200 and payload["status"] == "ok"
        finally:
            stop_server(server, thread)

    def test_deadline_fault_maps_to_504_envelope(self, tmp_path):
        server, thread = start_server(tmp_path)
        try:
            FAULTS.arm("service.evaluate", latency=0.5)
            status, payload, _ = request(
                server,
                "POST",
                "/query",
                {"document": "bib", "query": "//book/author", "deadline_ms": 50},
            )
            assert status == 504
            assert payload["error"]["kind"] == "deadline_exceeded"
        finally:
            FAULTS.disarm()
            stop_server(server, thread)

    def test_overload_sheds_429_with_retry_after(self, tmp_path):
        server, thread = start_server(tmp_path, max_queue=1)
        try:
            FAULTS.arm("service.evaluate", latency=0.4)
            outcomes = []
            lock = threading.Lock()

            def fire():
                status, payload, headers = request(
                    server, "POST", "/query", {"document": "bib", "query": "//book/author"}
                )
                with lock:
                    outcomes.append((status, payload, headers))

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for worker in threads:
                worker.start()
                time.sleep(0.01)  # first in the door holds the only slot
            for worker in threads:
                worker.join(timeout=30)
                assert not worker.is_alive(), "a shed request must never hang"
            statuses = sorted(status for status, _, _ in outcomes)
            assert 200 in statuses, statuses
            assert 429 in statuses, statuses
            for status, payload, headers in outcomes:
                if status == 429:
                    assert payload["error"]["kind"] == "overloaded"
                    assert int(headers["Retry-After"]) >= 1
                else:
                    assert status == 200
                    assert (
                        payload["tree_count"] == expected("//book/author")["tree_count"]
                    )
        finally:
            FAULTS.disarm()
            stop_server(server, thread)


class TestWorkerFaults:
    """Faults inside spawned worker processes cross the wire as typed errors."""

    def test_worker_fault_crosses_wire_as_typed_error(self, tmp_path):
        catalog = Catalog(str(tmp_path / "cat"))
        catalog.add("bib", BIB_XML)
        fleet = WorkerFleet(
            catalog,
            workers=2,
            health_interval=0.1,
            faults={"catalog.load_instance": {"kind": "integrity", "message": "injected"}},
        )
        try:
            assert fleet.wait_ready(timeout=60)
            with pytest.raises(IntegrityError, match="injected"):
                fleet.query("bib", "//book/author")
        finally:
            fleet.close()

    def test_worker_transient_fault_absorbed_by_retry(self, tmp_path):
        # times=1: the worker's CatalogError refresh-and-retry path absorbs
        # the injected miss and the caller still gets the *correct* answer.
        catalog = Catalog(str(tmp_path / "cat"))
        catalog.add("bib", BIB_XML)
        fleet = WorkerFleet(
            catalog,
            workers=2,
            health_interval=0.1,
            faults={"pool.load": {"kind": "catalog", "message": "transient", "times": 1}},
        )
        try:
            assert fleet.wait_ready(timeout=60)
            payload = fleet.query("bib", "//book/author")
            assert payload["tree_count"] == expected("//book/author")["tree_count"]
        finally:
            fleet.close()

    def test_dispatch_faults_open_breaker_then_recover(self, tmp_path):
        catalog = Catalog(str(tmp_path / "cat"))
        catalog.add("bib", BIB_XML)
        fleet = WorkerFleet(
            catalog,
            workers=2,
            health_interval=0.1,
            breaker_threshold=2,
            breaker_cooldown=0.2,
        )
        try:
            assert fleet.wait_ready(timeout=60)
            primary = fleet.shard_of("bib", "//book/author")
            FAULTS.arm(
                "cluster.dispatch",
                error=WorkerUnavailableError("injected dispatch failure"),
                times=2,
            )
            for _ in range(2):
                with pytest.raises(WorkerUnavailableError):
                    fleet.query("bib", "//book/author")
            health = fleet.health_dict()
            assert health["status"] == "degraded"
            assert primary in health["open_breakers"]
            # Route-around: the open shard is skipped, service continues.
            payload = fleet.query("bib", "//book/author")
            assert payload["tree_count"] == expected("//book/author")["tree_count"]
            assert payload["worker"] != primary
            # After the cooldown a half-open probe succeeds and heals the fleet.
            assert wait_until(
                lambda: fleet.query("bib", "//book/author")["worker"] == primary
                and fleet.health_dict()["status"] == "ok",
                timeout=15,
            )
        finally:
            fleet.close()

    def test_sigkill_mid_flight_never_hangs_or_lies(self, tmp_path):
        catalog = Catalog(str(tmp_path / "cat"))
        catalog.add("bib", BIB_XML)
        fleet = WorkerFleet(catalog, workers=2, health_interval=0.05)
        try:
            assert fleet.wait_ready(timeout=60)
            right = expected("//book/author")["tree_count"]
            outcomes = []
            lock = threading.Lock()

            def storm():
                for _ in range(10):
                    try:
                        payload = fleet.query("bib", "//book/author")
                        with lock:
                            outcomes.append(("ok", payload["tree_count"]))
                    except (WorkerUnavailableError, CatalogError) as error:
                        with lock:
                            outcomes.append(("error", type(error).__name__))

            threads = [threading.Thread(target=storm) for _ in range(4)]
            for worker in threads:
                worker.start()
            victim = fleet.shard_of("bib", "//book/author")
            os.kill(fleet.stats_dict()["workers"][victim]["pid"], signal.SIGKILL)
            for worker in threads:
                worker.join(timeout=60)
                assert not worker.is_alive(), "an in-flight request hung"
            # Contract: every request either answered correctly or failed
            # with a typed error — never a wrong tree count.
            for kind, value in outcomes:
                if kind == "ok":
                    assert value == right
            assert any(kind == "ok" for kind, _ in outcomes)
            # The monitor respawns the shard; the fleet serves again.
            assert wait_until(
                lambda: fleet.query("bib", "//book/author")["tree_count"] == right,
                timeout=30,
            )
        finally:
            fleet.close()

"""Tests for shredded storage and query-driven partial loading (section 6)."""

import pytest

from repro.corpora import generate
from repro.engine.evaluator import evaluate
from repro.errors import ReproError
from repro.model.equivalence import equivalent
from repro.skeleton.loader import load_instance
from repro.storage.chunked import ChunkedStore, extract_subdag
from repro.storage.prune import prunable_top_tags

from tests.skeleton.test_loader import BIB_XML


@pytest.fixture
def bib_store(tmp_path):
    instance = load_instance(BIB_XML, strings=["Codd"])
    return ChunkedStore.save(instance, str(tmp_path / "store")), instance


class TestExtractSubdag:
    def test_extracts_reachable_part(self, figure2_compressed):
        book = next(iter(figure2_compressed.members("book")))
        sub = extract_subdag(figure2_compressed, book)
        sub.validate()
        assert sub.num_vertices == 3  # book + title + author
        assert len(sub.members("book")) == 1

    def test_preserves_multiplicities(self, figure2_compressed):
        book = next(iter(figure2_compressed.members("book")))
        sub = extract_subdag(figure2_compressed, book)
        assert sorted(count for _, count in sub.children(sub.root)) == [1, 3]


class TestSaveAndAssemble:
    def test_full_round_trip(self, bib_store):
        store, original = bib_store
        assert equivalent(store.assemble(), original)

    def test_distinct_chunks_deduplicated(self, tmp_path):
        # Without string sets the two papers share one subtree -> one chunk.
        store = ChunkedStore.save(load_instance(BIB_XML), str(tmp_path / "plain"))
        assert store.num_chunks == 2  # book + shared paper

    def test_string_sets_split_chunks(self, bib_store):
        store, _ = bib_store
        # The "Codd" labeling distinguishes the papers: 3 distinct chunks.
        assert store.num_chunks == 3

    def test_partial_assembly(self, bib_store):
        store, _ = bib_store
        paper_chunks = store.chunks_with_tags({"paper"})
        partial = store.assemble(paper_chunks)
        partial.validate()
        assert len(partial.members("book")) == 0
        result = evaluate(partial, "/bib/paper/author")
        assert result.tree_count() == 2

    def test_chunk_cache(self, bib_store):
        store, _ = bib_store
        first = store.chunk(0)
        assert store.chunk(0) is first

    def test_save_requires_document_instance(self, tmp_path, figure2_compressed):
        # figure2's root has three children -> not a document instance.
        with pytest.raises(ReproError, match="document instance"):
            ChunkedStore.save(figure2_compressed, str(tmp_path / "bad"))

    def test_open_rejects_non_store(self, tmp_path):
        import json
        import os

        os.makedirs(tmp_path / "junk", exist_ok=True)
        (tmp_path / "junk" / "manifest.json").write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ReproError, match="not a chunk store"):
            ChunkedStore(str(tmp_path / "junk"))

    def test_reopen_from_disk(self, tmp_path):
        instance = load_instance(BIB_XML)
        ChunkedStore.save(instance, str(tmp_path / "s"))
        reopened = ChunkedStore(str(tmp_path / "s"))
        assert equivalent(reopened.assemble(), instance)


class TestPruning:
    @pytest.mark.parametrize(
        "query,expected",
        [
            ("/bib/paper/author", {"paper"}),
            ("/bib/book/title", {"book"}),
            ('/bib/paper[author["Codd"]]', {"paper"}),
            ("/bib/paper | /bib/book", {"paper", "book"}),
            ("/bib/paper//author", {"paper"}),
            ("//paper", None),  # leading // observes everything
            ("/bib/*", None),  # wildcard second step
            ("/bib/paper/following-sibling::paper", None),  # sibling axis
            ("/bib/paper[preceding-sibling::book]", None),
            ("/bib/paper[/descendant::book]", None),  # absolute condition
            ("/bib[book]/paper", None),  # predicate on the root element
            ("paper/author", None),  # relative query
            ("/bib", None),  # too short
        ],
    )
    def test_analysis(self, query, expected):
        assert prunable_top_tags(query) == expected


class TestPartialQueriesMatchFull:
    QUERIES = [
        "/bib/paper/author",
        '/bib/paper[author["Codd"]]/title',
        "/bib/book/author",
        "/bib/paper//author",
        "//paper",  # unprunable: must still be answered correctly
        "/bib/paper/following-sibling::paper",  # ditto
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_bib(self, bib_store, query):
        store, original = bib_store
        partial, loaded = store.instance_for_query(query)
        expected = evaluate(original, query)
        actual = evaluate(partial, query)
        assert actual.tree_count() == expected.tree_count()
        assert loaded <= store.num_chunks

    def test_pruned_query_loads_fewer_chunks(self, bib_store):
        store, _ = bib_store
        _, loaded = store.instance_for_query("/bib/paper/author")
        assert loaded == 2  # both paper chunks, not the book chunk
        _, loaded_all = store.instance_for_query("//author")
        assert loaded_all == store.num_chunks

    @pytest.mark.parametrize("corpus", ["dblp", "baseball"])
    def test_corpus_scale(self, tmp_path, corpus):
        xml = generate(corpus, 20, seed=4).xml
        instance = load_instance(xml)
        store = ChunkedStore.save(instance, str(tmp_path / corpus))
        assert equivalent(store.assemble(), instance)

"""Traversal caching: repeated calls are cached, mutation invalidates.

The engine relies on :meth:`Instance.preorder`/:meth:`Instance.postorder`
being memoised (axes, evaluator statistics, and result decoding all walk
the same order repeatedly) *and* on every structural mutation dropping the
memo — a stale order would silently corrupt query results, so the
invalidation paths get explicit regression coverage here.
"""

from __future__ import annotations

from repro.model.instance import Instance, tree_instance

from tests.conftest import LABELS


def build() -> Instance:
    return tree_instance(("a", [("b", []), ("c", [("a", [])])]), schema=LABELS)


class TestCaching:
    def test_repeated_calls_return_the_cached_list(self):
        instance = build()
        assert instance.preorder() is instance.preorder()
        assert instance.postorder() is instance.postorder()

    def test_mask_updates_do_not_invalidate(self):
        instance = build()
        pre = instance.preorder()
        post = instance.postorder()
        generation = instance.generation
        instance.add_to_set(0, "b")
        instance.fill_set("all")
        instance.combine_sets("union", "a", "b", "u")
        instance.clear_sets(["u"])
        instance.drop_sets(["u", "all"])
        assert instance.generation == generation
        assert instance.preorder() is pre
        assert instance.postorder() is post

    def test_copy_shares_the_cache_until_either_side_mutates(self):
        instance = build()
        pre = instance.preorder()
        clone = instance.copy()
        assert clone.preorder() is pre
        clone.new_vertex(["b"])
        assert clone.preorder() is not pre
        assert instance.preorder() is pre  # original unaffected


class TestInvalidation:
    def test_set_children_invalidates(self):
        instance = build()
        stale = list(instance.preorder())
        instance.postorder()
        generation = instance.generation
        leaf = instance.new_vertex(["b"])
        instance.set_children(instance.root, list(instance.children(instance.root)) + [(leaf, 1)])
        assert instance.generation > generation
        fresh = instance.preorder()
        assert leaf in fresh
        assert leaf not in stale
        assert leaf in instance.postorder()

    def test_new_vertex_invalidates(self):
        instance = build()
        instance.preorder()
        generation = instance.generation
        instance.new_vertex(["a"])
        assert instance.generation > generation
        # The new vertex is unreachable, but the cache must still have been
        # dropped: the recomputed orders remain correct.
        assert set(instance.preorder()) == set(range(instance.num_vertices - 1))

    def test_set_root_invalidates(self):
        instance = build()
        whole = list(instance.preorder())
        subtree_root = whole[-1]
        instance.set_root(subtree_root)
        assert instance.preorder()[0] == subtree_root
        assert set(instance.preorder()) < set(whole)
        assert instance.postorder()[-1] == subtree_root

    def test_stale_cache_regression_through_the_engine_path(self):
        # The exact shape of the historical hazard: cache an order, mutate
        # through the Figure 4 in-place axis (which calls set_children and
        # new_vertex_masked), and check traversals see the mutated DAG.
        from repro.engine.axes_inplace import downward_axis_inplace

        instance = Instance(LABELS)
        leaf = instance.new_vertex(["c"])
        shared = instance.new_vertex(["b"], [(leaf, 1)])
        left = instance.new_vertex(["b"], [(shared, 1)])
        root = instance.new_vertex(["a"], [(left, 1), (shared, 1)])
        instance.set_root(root)
        before = list(instance.preorder())
        downward_axis_inplace(instance, "child", "a", "selected")
        after = instance.preorder()
        assert after is not before
        # The split appended a copy of the shared vertex; it must be visible.
        assert len(after) == len(before) + 1


class TestCopySharing:
    """copy() shares every immutable cache; mutation detaches lazily.

    The pool's snapshot mode takes a ``copy()`` per batch, so these caches
    being *shared* (not deep-copied) is what makes steady-state snapshots
    skip the initial DFS / CSR build — and a mutation on either side must
    only ever detach that side's reference, never corrupt the other's.
    """

    def test_copy_shares_all_four_caches(self):
        instance = build()
        pre = instance.preorder()
        post = instance.postorder()
        reach = instance.reachable_plane()
        csr = instance.edge_csr()
        clone = instance.copy()
        assert clone.preorder() is pre
        assert clone.postorder() is post
        assert clone.reachable_plane() is reach
        assert clone.edge_csr() is csr

    def test_mutating_original_leaves_clone_cached(self):
        instance = build()
        pre = instance.preorder()
        post = instance.postorder()
        clone = instance.copy()
        instance.new_vertex(["b"])  # structural mutation on the *original*
        assert instance.preorder() is not pre
        assert clone.preorder() is pre  # clone still serves the shared memo
        assert clone.postorder() is post

    def test_mutation_after_copy_regression(self):
        # The historical hazard shape: copy, mutate the clone through an
        # engine-style structural edit, and check both sides stay correct
        # and fully independent (no shared mutable state bleeds through).
        instance = build()
        instance.add_to_set(0, "b")
        instance.preorder(), instance.postorder(), instance.edge_csr()
        clone = instance.copy()
        leaf = clone.new_vertex(["c"])
        clone.set_children(
            clone.root, list(clone.children(clone.root)) + [(leaf, 1)]
        )
        clone.add_to_set(leaf, "a")
        assert len(clone.preorder()) == len(instance.preorder()) + 1
        assert clone.num_vertices == instance.num_vertices + 1
        # Plane stores are independent: the clone's new membership is
        # invisible to the original, and the original's masks are intact.
        assert instance.row_masks() == [
            clone.mask(v) for v in range(instance.num_vertices)
        ]
        assert instance.validate() is None
        assert clone.validate() is None

"""Distill-and-merge: add string-constraint sets without re-reading the XML.

Section 4 of the paper describes the intended production workflow:

    "Whenever a property P is required that is not yet represented in the
    instance, we can search the (uncompressed) representation of the XML
    document on disk, distill a compressed instance over schema {P}, and
    merge it with the instance that holds our current intermediate result
    using the common extensions algorithm of Section 2.3."

Here the "representation on disk" is our lossless decomposition (skeleton +
containers + layout), so distilling never touches the original XML: the
element/text event stream is *replayed* from the decomposition — markup
boundaries from the decompressed skeleton, character data from the
containers — through the same stream matcher and DAG builder the loader
uses, producing a minimal instance over exactly the new string sets, which
the product construction of Lemma 2.7 then merges into the base instance.

Replaying skips all XML tokenisation/entity work, so this is markedly
faster than a re-parse (benchmarked in ``bench_distill_merge.py``).
"""

from __future__ import annotations

from repro.compress.builder import DagBuilder
from repro.compress.common_extension import common_extension
from repro.compress.decompress import decompress
from repro.errors import ReproError
from repro.model.instance import Instance
from repro.model.schema import DOC_SET, string_set
from repro.skeleton.layout import TextLayout
from repro.strings.containers import ContainerStore
from repro.strings.matcher import StreamMatcher


def distill_string_instance(
    skeleton: Instance,
    containers: ContainerStore,
    layout: TextLayout,
    needles: list[str],
    matcher_strategy: str = "auto",
) -> Instance:
    """A minimal instance over ``{DOC_SET} + string sets`` for ``needles``.

    The instance unfolds to the same tree as ``skeleton`` (they are
    *compatible* in the section 2.3 sense), with each vertex labeled by the
    string constraints its string value satisfies.
    """
    patterns = list(dict.fromkeys(needles))
    decompression = decompress(skeleton)
    tree = decompression.tree
    order = tree.preorder()
    ordinal_of = {vertex: index - 1 for index, vertex in enumerate(order)}
    chunks = containers.in_document_order()
    per_element = layout.by_element()

    builder = DagBuilder()
    matcher = StreamMatcher(patterns, strategy=matcher_strategy)
    string_bits = [1 << builder.ensure_set(string_set(p)) for p in patterns]
    doc_mask = 1 << builder.ensure_set(DOC_SET)

    def translate(match_mask: int) -> int:
        out = 0
        index = 0
        while match_mask:
            if match_mask & 1:
                out |= string_bits[index]
            match_mask >>= 1
            index += 1
        return out

    # Replay the event stream: iterative document-order walk emitting text
    # chunks at their recorded slots.  Frames: [vertex, next_child, text_ptr].
    stack: list[list[int]] = [[tree.root, 0, 0]]
    builder.start_node()
    matcher.open_node()
    while stack:
        frame = stack[-1]
        vertex, child_index, text_ptr = frame
        texts = per_element.get(ordinal_of[vertex], ())
        children = tree.children(vertex)
        # Emit the text chunks scheduled at this slot.
        while text_ptr < len(texts) and texts[text_ptr][0] == child_index:
            matcher.text(chunks[texts[text_ptr][1]])
            text_ptr += 1
        frame[2] = text_ptr
        if child_index < len(children):
            frame[1] = child_index + 1
            stack.append([children[child_index][0], 0, 0])
            builder.start_node()
            matcher.open_node()
        else:
            stack.pop()
            mask = translate(matcher.close_node())
            if vertex == tree.root:
                mask |= doc_mask
            builder.end_node_masked(mask)
    return builder.finish()


def add_string_sets(
    base: Instance,
    containers: ContainerStore,
    layout: TextLayout,
    needles: list[str],
) -> Instance:
    """The full section 4 workflow: distill new string sets, then merge.

    Returns a common extension of ``base`` and the distilled instance — the
    base's schema plus one ``#contains:`` set per needle.  Raises if a
    needle's set already exists in ``base``.
    """
    for needle in needles:
        if base.has_set(string_set(needle)):
            raise ReproError(f"string set for {needle!r} already present")
    distilled = distill_string_instance(base, containers, layout, needles)
    return common_extension(base, distilled)

"""Prepared queries: parse and compile once, run anywhere.

A :class:`PreparedQuery` is the compile-time half of a query, derived a
single time from its text: the compiled algebra expression, the schema
key (the tags and string-containment needles the one-scan loader must
extract — section 4), and the canonical structural key the batch engine's
common-subexpression cache shares work by.  The same object feeds every
execution surface: an embedded :class:`repro.api.Database` seeds its
engine's compiled-LRU with it, a served database seeds the service's
:class:`repro.server.service.CompiledQueryCache`, and the batch evaluator
consumes its expression directly — so no surface ever re-parses a text
this object already compiled.
"""

from __future__ import annotations

from repro.api.plan import Plan
from repro.xpath.algebra import AlgebraExpr

#: A schema key: (sorted tags, sorted string constraints).
SchemaKey = tuple[tuple[str, ...], tuple[str, ...]]


class PreparedQuery:
    """One query text, parsed and compiled exactly once (immutable)."""

    __slots__ = ("text", "expr", "tags", "strings", "_plan")

    def __init__(
        self,
        text: str,
        expr: AlgebraExpr,
        tags: tuple[str, ...],
        strings: tuple[str, ...],
    ):
        self.text = text
        self.expr = expr
        #: Sorted element tags the query mentions (``@name`` for attributes).
        self.tags = tuple(tags)
        #: Sorted string-containment needles the query mentions.
        self.strings = tuple(strings)
        self._plan: Plan | None = None

    @classmethod
    def compile(cls, query_text: str) -> "PreparedQuery":
        """Parse + compile ``query_text`` (one parse feeds all derivations)."""
        from repro.xpath.compiler import compile_query, required_strings, required_tags
        from repro.xpath.parser import parse_query

        ast = parse_query(query_text)
        return cls(
            query_text,
            compile_query(ast),
            tuple(sorted(required_tags(ast))),
            tuple(sorted(required_strings(ast))),
        )

    @property
    def schema_key(self) -> SchemaKey:
        """The per-schema cache key (what a one-scan load must extract)."""
        return (self.tags, self.strings)

    def structural_key(self) -> tuple:
        """The algebra tree's canonical key (batch-engine sharing unit)."""
        return self.expr.structural_key()

    def plan(self) -> Plan:
        """The structured :class:`repro.api.Plan` of this query (cached)."""
        if self._plan is None:
            self._plan = Plan.from_compiled(self.text, self.expr, self.tags, self.strings)
        return self._plan

    def run(self, database, **kwargs):
        """Execute against a :class:`repro.api.Database` (convenience)."""
        return database.execute(self, **kwargs)

    def __repr__(self) -> str:
        return f"PreparedQuery({self.text!r})"

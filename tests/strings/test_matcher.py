"""Tests for StreamMatcher: attributing matches to nodes' string values."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.strings.matcher import StreamMatcher
from repro.xmlio.dom import parse_document


def match_document(xml_text, patterns, strategy="auto"):
    """Run the matcher over a document; return {preorder_index: set(patterns)}.

    Drives the matcher exactly like the skeleton loader does and records the
    returned mask for every element in document order.
    """
    from repro.xmlio.parser import parse_events

    matcher = StreamMatcher(patterns, strategy=strategy)
    results = {}
    order = []
    counter = 0
    stack = []
    for event in parse_events(xml_text):
        if event.kind == "start":
            stack.append(counter)
            order.append(counter)
            counter += 1
            matcher.open_node()
        elif event.kind == "text":
            matcher.text(event.data)
        elif event.kind == "end":
            index = stack.pop()
            mask = matcher.close_node()
            results[index] = {
                patterns[i] for i in range(len(patterns)) if mask >> i & 1
            }
    return results


def expected_by_string_value(xml_text, patterns):
    """Oracle: compute matches from materialised string values via the DOM."""
    doc = parse_document(xml_text)
    expected = {}
    for index, element in enumerate(doc.root.descendants()):
        value = element.string_value()
        expected[index] = {p for p in patterns if p in value}
    return expected


class TestStreamMatcher:
    def test_simple_containment(self):
        results = match_document("<a><b>Codd</b><c>Vardi</c></a>", ["Codd"])
        assert results[1] == {"Codd"}
        assert results[2] == set()
        assert results[0] == {"Codd"}  # ancestor string value contains it

    def test_match_across_text_chunks(self):
        # 'Codd' spans a CDATA boundary inside one element.
        results = match_document("<a>Co<![CDATA[dd]]></a>", ["Codd"])
        assert results[0] == {"Codd"}

    def test_match_across_element_boundary_belongs_to_ancestor_only(self):
        results = match_document("<a><b>Co</b><c>dd</c></a>", ["Codd"])
        assert results[0] == {"Codd"}
        assert results[1] == set()
        assert results[2] == set()

    def test_match_within_child_propagates_up(self):
        results = match_document("<a><b><c>needle</c></b></a>", ["needle"])
        assert results[0] == results[1] == results[2] == {"needle"}

    def test_no_false_positive_between_siblings_of_closed_parent(self):
        # 'xy' spans </b> ... <c>: belongs to <a> but not to b or c.
        results = match_document("<a><b>x</b><c>y</c></a>", ["xy"])
        assert results[0] == {"xy"}
        assert results[1] == set()
        assert results[2] == set()

    def test_multiple_patterns(self):
        results = match_document(
            "<r><x>alpha</x><y>beta</y></r>", ["alpha", "beta", "gamma"]
        )
        assert results[1] == {"alpha"}
        assert results[2] == {"beta"}
        assert results[0] == {"alpha", "beta"}

    def test_no_patterns_is_cheap_noop(self):
        results = match_document("<a>text</a>", [])
        assert results[0] == set()

    def test_errors_on_misuse(self):
        matcher = StreamMatcher(["x"])
        with pytest.raises(ReproError):
            matcher.close_node()
        with pytest.raises(ReproError):
            matcher.text("boom")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ReproError):
            StreamMatcher(["x"], strategy="quantum")

    @pytest.mark.parametrize("strategy", ["find", "automaton"])
    def test_strategies_agree(self, strategy):
        xml_text = "<a><b>ab</b><c>cd<d>ab</d>ra</c></a>"
        patterns = ["ab", "cdab", "abra", "dabra"]
        assert match_document(xml_text, patterns, strategy) == expected_by_string_value(
            xml_text, patterns
        )


# Random documents: build small trees with text drawn from a tiny alphabet so
# cross-boundary matches are common, then compare both strategies against the
# DOM string-value oracle.
@st.composite
def random_xml(draw):
    def node(depth):
        pieces = ["<n>"]
        for _ in range(draw(st.integers(0, 3))):
            if depth < 3 and draw(st.booleans()):
                pieces.append(node(depth + 1))
            else:
                pieces.append(draw(st.text(alphabet="ab", max_size=4)))
        pieces.append("</n>")
        return "".join(pieces)

    return node(0)


@given(
    random_xml(),
    st.lists(st.text(alphabet="ab", min_size=1, max_size=5), min_size=1, max_size=3),
)
def test_matcher_equals_string_value_oracle(xml_text, patterns):
    expected = expected_by_string_value(xml_text, patterns)
    assert match_document(xml_text, patterns, "automaton") == expected
    assert match_document(xml_text, patterns, "find") == expected

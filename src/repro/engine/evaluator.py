"""Bottom-up evaluation of algebra expressions on compressed instances (3.3).

The evaluator walks the query's algebra tree in postorder.  Every
subexpression materialises as a *named selection* on the working instance
(the paper's "always adding the resulting selection to the resulting
instance for future use"); axis applications may partially decompress the
instance, and because every existing set is carried through a rebuild,
previously computed selections remain valid.

Set operations and ``V|root`` are pure mask arithmetic; axes dispatch to
:mod:`repro.engine.axes_compressed` (default) or the Figure 4 port in
:mod:`repro.engine.axes_inplace`.
"""

from __future__ import annotations

import time

from repro.errors import EvaluationError
from repro.model.instance import Instance
from repro.model.schema import is_temp, temp_set
from repro.engine import axes_compressed, axes_inplace
from repro.engine.results import QueryResult
from repro.xpath.algebra import (
    AlgebraExpr,
    AllNodes,
    AxisApply,
    ContextSet,
    Difference,
    EmptySet,
    Intersect,
    NamedSet,
    RootFilter,
    RootSet,
    Union,
    is_split_free,
)
from repro.xpath.compiler import compile_query


class CompressedEvaluator:
    """Evaluates Core XPath algebra expressions over one compressed instance.

    ``context`` names an existing set used for relative queries' starting
    selection; it defaults to the root singleton.  ``axes`` selects the axis
    implementation: ``"functional"`` (default) or ``"inplace"`` (Figure 4).
    With ``copy=False`` the caller's instance is consumed/mutated.

    ``short_circuit=True`` enables the optimizer's dynamic counterpart to
    static empty-branch folding: when the left operand of an intersection
    or difference evaluates to the empty selection, the right operand is
    skipped — but only when :func:`repro.xpath.algebra.is_split_free`
    holds for it, so the final instance's vertex partition (and with it
    every reported DAG count) is byte-identical to a full evaluation.
    """

    def __init__(
        self,
        instance: Instance,
        context: str | None = None,
        axes: str = "functional",
        copy: bool = True,
        short_circuit: bool = False,
    ):
        if axes not in ("functional", "inplace"):
            raise EvaluationError(f"unknown axes implementation {axes!r}")
        self._instance = instance.copy() if copy else instance
        self._context = context
        self._axes = axes
        self._counter = 0
        self._short_circuit = short_circuit
        self._trace: dict[int, str] | None = None

    @property
    def instance(self) -> Instance:
        """The working instance (inspect after evaluation to see splits)."""
        return self._instance

    def _before_sizes(self) -> tuple[int, int]:
        """(vertices, edge entries) of the reachable working instance."""
        instance = self._instance
        reachable = instance.preorder()  # cached across calls until mutation
        if len(reachable) == instance.num_vertices:
            return (len(reachable), instance.num_edge_entries)
        edge_table = instance.edge_table()
        return (len(reachable), sum(len(edge_table[v]) for v in reachable))

    def evaluate(
        self,
        query: str | AlgebraExpr,
        keep_temps: bool = False,
        trace: dict[int, str] | None = None,
    ) -> QueryResult:
        """Evaluate a query (string or compiled algebra) to a result selection.

        ``trace``, when given, is filled with ``id(node) -> selection name``
        for every algebra node evaluated (the explain ``analyze`` hook:
        callers read per-node actual cardinalities off the final instance —
        pass ``keep_temps=True`` so the traced selections survive).  Nodes
        skipped by short-circuiting are absent from the trace.
        """
        expr = compile_query(query) if isinstance(query, str) else query
        before = self._before_sizes()
        self._trace = trace
        started = time.perf_counter()
        try:
            result_name = self._eval(expr)
        finally:
            self._trace = None
        elapsed = time.perf_counter() - started
        if not keep_temps:
            self._drop_temps(except_for=result_name)
        return QueryResult(
            instance=self._instance, set_name=result_name, before=before, seconds=elapsed
        )

    # ------------------------------------------------------------------

    def _fresh(self) -> str:
        self._counter += 1
        return temp_set(self._counter)

    def _drop_temps(self, except_for: str) -> None:
        self._instance.drop_sets(
            name for name in self._instance.schema if is_temp(name) and name != except_for
        )

    def _eval(self, expr: AlgebraExpr) -> str:
        name = self._eval_node(expr)
        if self._trace is not None:
            self._trace[id(expr)] = name
        return name

    def _empty_selection(self) -> str:
        name = self._fresh()
        self._instance.ensure_set(name)
        return name

    def _is_empty_selection(self, name: str) -> bool:
        """True when the selection's raw mask plane is all zero (a pure
        popcount — no reachability restriction needed for emptiness)."""
        return self._instance.count_set(name, reachable_only=False) == 0

    def _eval_node(self, expr: AlgebraExpr) -> str:
        instance = self._instance
        if isinstance(expr, NamedSet):
            if not instance.has_set(expr.name):
                raise EvaluationError(
                    f"set {expr.name!r} is not in the instance schema; "
                    f"load the document with the tags/strings this query needs"
                )
            return expr.name
        if isinstance(expr, RootSet):
            name = self._fresh()
            instance.add_to_set(instance.root, name)
            return name
        if isinstance(expr, AllNodes):
            return instance.fill_set(self._fresh())
        if isinstance(expr, ContextSet):
            if self._context is not None:
                if not instance.has_set(self._context):
                    raise EvaluationError(f"context set {self._context!r} missing")
                return self._context
            # Default context: the document root (the paper's experiments
            # select the root as context, Figure 5 caption).
            name = self._fresh()
            instance.add_to_set(instance.root, name)
            return name
        if isinstance(expr, EmptySet):
            return self._empty_selection()
        if isinstance(expr, (Union, Intersect, Difference)):
            left = self._eval(expr.left)
            if (
                self._short_circuit
                and not isinstance(expr, Union)
                and is_split_free(expr.right)
                and self._is_empty_selection(left)
            ):
                # ∅ ∩ R = ∅ and ∅ − R = ∅; skipping R only elides
                # split-free work, so the partition stays identical.
                return self._empty_selection()
            right = self._eval(expr.right)
            return self._combine(expr, left, right)
        if isinstance(expr, AxisApply):
            source = self._eval(expr.operand)
            target = self._fresh()
            if self._axes == "inplace" and expr.axis in (
                "child",
                "descendant",
                "descendant-or-self",
            ):
                self._instance = axes_inplace.downward_axis_inplace(
                    self._instance, expr.axis, source, target
                )
            else:
                self._instance = axes_compressed.apply_axis(
                    self._instance, expr.axis, source, target
                )
            return target
        if isinstance(expr, RootFilter):
            source = self._eval(expr.operand)
            instance = self._instance  # may have been rebuilt
            name = self._fresh()
            if instance.in_set(instance.root, source):
                instance.fill_set(name)
            else:
                instance.ensure_set(name)
            return name
        raise EvaluationError(f"cannot evaluate algebra node {expr!r}")

    def _combine(self, expr: AlgebraExpr, left: str, right: str) -> str:
        if isinstance(expr, Union):
            op = "union"
        elif isinstance(expr, Intersect):
            op = "intersect"
        else:
            op = "difference"
        return self._instance.combine_sets(op, left, right, self._fresh())


def evaluate(
    instance: Instance,
    query: str | AlgebraExpr,
    context: str | None = None,
    axes: str = "functional",
    copy: bool = True,
) -> QueryResult:
    """One-shot convenience wrapper around :class:`CompressedEvaluator`."""
    return CompressedEvaluator(instance, context=context, axes=axes, copy=copy).evaluate(query)


def measure_actuals(
    instance: Instance,
    expr: AlgebraExpr,
    context: str | None = None,
    axes: str = "functional",
    copy: bool = True,
) -> dict[int, dict]:
    """Execute ``expr`` and measure every node's selection cardinalities.

    The explain-analyze backend: returns ``id(node) -> {"dag_count",
    "tree_count"}`` for each algebra node of ``expr``, measured on the
    final instance after a full (non-short-circuited) evaluation —
    :class:`repro.api.plan.Plan` zips these with its per-node estimates.
    ``dag_count`` counts reachable selected vertices; ``tree_count`` is the
    exact number of tree nodes the selection denotes.
    """
    from repro.model.paths import tree_node_counts

    trace: dict[int, str] = {}
    evaluator = CompressedEvaluator(instance, context=context, axes=axes, copy=copy)
    evaluator.evaluate(expr, keep_temps=True, trace=trace)
    final = evaluator.instance
    counts = tree_node_counts(final)
    actuals: dict[int, dict] = {}
    for node_id, set_name in trace.items():
        members = final.members(set_name)
        actuals[node_id] = {
            "dag_count": sum(1 for v in members if v in counts),
            "tree_count": sum(counts.get(v, 0) for v in members),
        }
    return actuals

"""Attributing substring matches to skeleton nodes during a single scan.

XPath's *string value* of a node is the concatenation of all character data
in its subtree, so a string constraint ``["Codd"]`` can match across text
chunks and even across element boundaries (``<a>Co<b/>dd</a>`` has string
value ``"Codd"``).  Running one matcher per open element would cost
O(depth x text).  Instead we observe:

* the character data of the document, in order, forms one global stream;
* the string value of a node is the contiguous slice of that stream between
  the node's open and close times;
* hence a match with stream span ``[s, e]`` belongs to exactly the open
  nodes whose open position is ``<= s`` — a *prefix* of the element stack —
  and to every ancestor of those (string values are nested).

So it suffices to mark the *deepest* open node with ``open_position <= s``
(found by binary search on the stack, whose open positions are sorted) and
to OR masks into the parent when a node closes.  One automaton pass over the
text, O(log depth) per match, exact XPath semantics.

Two interchangeable scanners are provided: the Aho-Corasick automaton
(general) and a ``str.find`` based scanner with an overlap buffer (faster in
CPython for few patterns).  ``StreamMatcher`` picks one automatically.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

from repro.errors import ReproError
from repro.strings.aho_corasick import AhoCorasick


class _AutomatonScanner:
    """Cross-chunk scanning via Aho-Corasick; yields (global_start, mask)."""

    __slots__ = ("_automaton", "_state", "_lengths")

    def __init__(self, patterns: Sequence[str]):
        self._automaton = AhoCorasick(patterns)
        self._state = 0
        self._lengths = [len(p) for p in patterns]

    def scan(self, chunk: str, base: int) -> list[tuple[int, int]]:
        self._state, matches = self._automaton.resume(self._state, chunk)
        out: list[tuple[int, int]] = []
        for offset, mask in matches:
            end = base + offset
            remaining = mask
            index = 0
            while remaining:
                if remaining & 1:
                    out.append((end - self._lengths[index] + 1, 1 << index))
                remaining >>= 1
                index += 1
        return out


class _FindScanner:
    """Cross-chunk scanning via str.find with an overlap tail buffer."""

    __slots__ = ("_patterns", "_tail", "_tail_len", "_max_overlap")

    def __init__(self, patterns: Sequence[str]):
        if any(not p for p in patterns):
            raise ReproError("empty string patterns are not allowed")
        self._patterns = list(enumerate(patterns))
        self._max_overlap = max(len(p) for p in patterns) - 1
        self._tail = ""

    def scan(self, chunk: str, base: int) -> list[tuple[int, int]]:
        tail = self._tail
        haystack = tail + chunk if tail else chunk
        tail_len = len(tail)
        out: list[tuple[int, int]] = []
        for index, pattern in self._patterns:
            start = 0
            # Matches entirely inside the old tail were already reported.
            minimum_end = tail_len
            while True:
                hit = haystack.find(pattern, start)
                if hit < 0:
                    break
                if hit + len(pattern) > minimum_end:
                    out.append((base - tail_len + hit, 1 << index))
                start = hit + 1
        if self._max_overlap:
            self._tail = haystack[-self._max_overlap:]
        out.sort()
        return out


class StreamMatcher:
    """Match string constraints against node string values in one pass.

    Drive it with :meth:`open_node` / :meth:`text` / :meth:`close_node` in
    document order; :meth:`close_node` returns the bitmask of patterns
    occurring in the closing node's string value (bit ``i`` = pattern ``i``).
    """

    __slots__ = ("_scanner", "_position", "_open_positions", "_masks", "patterns")

    def __init__(self, patterns: Sequence[str], strategy: str = "auto"):
        self.patterns = tuple(patterns)
        if strategy == "auto":
            strategy = "find" if 0 < len(patterns) <= 8 else "automaton"
        if not patterns:
            self._scanner = None
        elif strategy == "find":
            self._scanner = _FindScanner(patterns)
        elif strategy == "automaton":
            self._scanner = _AutomatonScanner(patterns)
        else:
            raise ReproError(f"unknown matcher strategy {strategy!r}")
        self._position = 0
        self._open_positions: list[int] = []
        self._masks: list[int] = []

    @property
    def depth(self) -> int:
        return len(self._open_positions)

    def open_node(self) -> None:
        self._open_positions.append(self._position)
        self._masks.append(0)

    def text(self, data: str) -> None:
        if self._scanner is None or not data:
            self._position += len(data)
            return
        if not self._open_positions:
            raise ReproError("text outside any open node")
        matches = self._scanner.scan(data, self._position)
        self._position += len(data)
        if not matches:
            return
        opens = self._open_positions
        masks = self._masks
        for start, bit in matches:
            # Deepest open node whose span covers the whole match.
            slot = bisect_right(opens, start) - 1
            if slot >= 0:
                masks[slot] |= bit

    def close_node(self) -> int:
        if not self._open_positions:
            raise ReproError("close_node without open_node")
        self._open_positions.pop()
        mask = self._masks.pop()
        if self._masks:
            self._masks[-1] |= mask  # ancestors contain this string value
        return mask

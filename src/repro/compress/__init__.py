"""Compression subsystem: minimisation, streaming build, decompression, merging.

Implements sections 2.2-2.3 of the paper: the linear-time compressor
``M(I)``, the one-scan streaming :class:`DagBuilder`, tree materialisation
``T(I)`` and the product-construction common extension of compatible
instances.
"""

from repro.compress.builder import DagBuilder
from repro.compress.common_extension import common_extension
from repro.compress.decompress import DEFAULT_LIMIT, Decompression, decompress, document_order
from repro.compress.minimize import is_compressed, minimize
from repro.compress.stats import InstanceStats, instance_stats

__all__ = [
    "DEFAULT_LIMIT",
    "DagBuilder",
    "Decompression",
    "InstanceStats",
    "common_extension",
    "decompress",
    "document_order",
    "instance_stats",
    "is_compressed",
    "minimize",
]

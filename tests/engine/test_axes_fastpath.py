"""Split-avoiding axis fast paths vs the product rebuild (DESIGN.md section 5).

``apply_axis`` first attempts an in-place mask pass for the downward and
sibling axes and only rebuilds the ``(vertex, bit)`` product when a shared
vertex would genuinely split.  These tests pin the contract from both
sides:

* whatever path is taken, the outcome must be *equivalent* (Definition 2.1:
  same unfolded tree, same path sets for every selection) to the instance
  the rebuild produces, on random trees and random shared DAGs;
* on trees the fast path must actually fire (no split is ever needed), and
  when it fires the instance is untouched structurally.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.corpora.binary_tree import compressed_instance
from repro.engine import axes_compressed
from repro.engine.axes_compressed import apply_axis
from repro.model.equivalence import equivalent
from repro.model.instance import tree_instance

from tests.conftest import LABELS, random_dag_instances, random_tree_instances, tree_specs

SPLITTING_AXES = (
    "child",
    "descendant",
    "descendant-or-self",
    "following-sibling",
    "preceding-sibling",
)


def rebuild_only(instance, axis, source, target):
    """The general product rebuild, bypassing the fast-path attempt."""
    if axis in ("child", "descendant", "descendant-or-self"):
        return axes_compressed._downward_rebuild(instance, axis, source, target)
    return axes_compressed._sibling_rebuild(
        instance, source, target, following=(axis == "following-sibling")
    )


@given(random_dag_instances(), st.sampled_from(SPLITTING_AXES), st.sampled_from(LABELS))
def test_fast_path_equivalent_to_rebuild_on_dags(instance, axis, source):
    via_apply = apply_axis(instance.copy(), axis, source, "T")
    via_rebuild = rebuild_only(instance.copy(), axis, source, "T")
    assert equivalent(via_apply, via_rebuild)


@given(random_tree_instances(), st.sampled_from(SPLITTING_AXES), st.sampled_from(LABELS))
def test_fast_path_fires_and_matches_on_trees(instance, axis, source):
    working = instance.copy()
    result = apply_axis(working, axis, source, "T")
    if instance.members(source):
        # Trees never split, so the non-empty-source fast path must fire:
        # the instance is mutated in place, not rebuilt.
        assert result is working
        assert result.num_vertices == instance.num_vertices
    assert equivalent(result, rebuild_only(instance.copy(), axis, source, "T"))


@pytest.mark.parametrize("axis", SPLITTING_AXES)
@pytest.mark.parametrize("source", ["a", "b"])
def test_fast_path_on_shared_binary_tree_corpus(axis, source):
    # Figure 5's maximally shared DAG: every interior vertex is shared, so
    # fast path and rebuild genuinely diverge in representation; results
    # must still be equivalent.
    instance = compressed_instance(depth=5)
    via_apply = apply_axis(instance.copy(), axis, source, "T")
    via_rebuild = rebuild_only(instance.copy(), axis, source, "T")
    assert equivalent(via_apply, via_rebuild)


def test_descendant_from_root_avoids_the_split_on_a_shared_dag():
    # All parents agree on the context bit ("has an ancestor in S" is true
    # everywhere below the root), so even a heavily shared DAG takes the
    # in-place path for descendant-from-root.
    instance = compressed_instance(depth=6)
    instance.add_to_set(instance.root, "ctx")
    working = instance.copy()
    result = apply_axis(working, "descendant", "ctx", "T")
    assert result is working
    assert result.num_vertices == instance.num_vertices
    assert result.members("T") == set(result.preorder()) - {result.root}


def test_child_axis_splits_when_parents_disagree():
    # One parent in S, the other not: the shared child must split, so the
    # fast path refuses and the rebuild grows the instance.
    from repro.model.instance import Instance

    instance = Instance(LABELS)
    leaf = instance.new_vertex(["c"])
    shared = instance.new_vertex(["b"], [(leaf, 1)])
    left = instance.new_vertex(["b"], [(shared, 1)])
    root = instance.new_vertex(["a"], [(left, 1), (shared, 1)])
    instance.set_root(root)
    result = apply_axis(instance.copy(), "child", "a", "T")
    assert result.num_vertices == instance.num_vertices + 1
    assert equivalent(result, rebuild_only(instance.copy(), "child", "a", "T"))


def test_sibling_run_split_falls_back_to_rebuild():
    # A multiplicity run whose child is in S splits the run itself:
    # (w, 3) becomes (w, 1) + (w', 2) under following-sibling.
    from repro.model.instance import Instance

    instance = Instance(["a", "b"])
    w = instance.new_vertex(["b"])
    root = instance.new_vertex(["a"], [(w, 3)])
    instance.set_root(root)
    result = apply_axis(instance.copy(), "following-sibling", "b", "T")
    expected = rebuild_only(instance.copy(), "following-sibling", "b", "T")
    assert equivalent(result, expected)
    # Occurrences 2 and 3 have a preceding occurrence of w in S before them.
    assert result.num_vertices == instance.num_vertices + 1


@given(tree_specs())
def test_full_query_results_agree_between_paths(spec):
    # End to end through the evaluator: decoded tree paths must not depend
    # on whether axes split or take the fast path.
    from tests.engine.util import assert_engines_agree

    instance = tree_instance(spec, schema=LABELS)
    assert_engines_agree(instance, "//a/b")
    assert_engines_agree(instance, "//b/following-sibling::c")
